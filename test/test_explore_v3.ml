(* Exploration v3: the process-symmetry quotient against the PR-1 engine
   and the exhaustive baseline — identical verdicts with and without the
   quotient on correct and fault-injected objects under every flag
   combination, replayable counterexamples, allocation-free fingerprints —
   plus the E1 regression pinning the checkpointed adversary to the exact
   covered counts and schedule lengths of the pre-checkpointing engine. *)

let flag_combos =
  (* label, dedup, reduction, domains *)
  [ ("dedup", true, false, 1);
    ("reduction", false, true, 1);
    ("dedup+reduction", true, true, 1);
    ("dedup+reduction+domains", true, true, 3) ]

let checker_leaf (type v r)
    (module T : Timestamp.Intf.S with type value = v and type result = r)
    (cfg : (v, r) Shm.Sim.t) =
  Result.is_ok (Timestamp.Checker.check_sim (module T) cfg)

let run_engine (type v r) ?invariant ~dedup ~reduction ~symmetry ~domains
    (module T : Timestamp.Intf.S with type value = v and type result = r) ~n
    ~calls =
  let supplier ~pid ~call = T.program ~n ~pid ~call in
  let cfg =
    Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
  in
  Shm.Explore.explore ~max_steps:400 ~dedup ~reduction ~symmetry ~domains
    ~supplier
    ~calls_per_proc:(Array.make n calls)
    ?invariant
    ~leaf_check:(checker_leaf (module T))
    cfg

let outcome_signature = function
  | Shm.Explore.Ok _ -> "ok"
  | Shm.Explore.Counterexample { at_leaf; _ } ->
    if at_leaf then "cex-leaf" else "cex-invariant"

(* Detection: pids sharing a register of Simple_oneshot (pid/2) are
   structurally identical; Lamport programs capture their own pid, so every
   class is a singleton. *)
let symmetry_detection () =
  let classes (type v r)
      (module T : Timestamp.Intf.S with type value = v and type result = r)
      ~n =
    Shm.Schedule.symmetry_classes
      (fun ~pid ~call -> T.program ~n ~pid ~call)
      ~n ~calls_per_proc:(Array.make n 1)
  in
  Util.check_bool "simple-oneshot n=4: {0,1}{2,3}" true
    (classes (module Timestamp.Simple_oneshot) ~n:4 = [| 0; 0; 2; 2 |]);
  Util.check_bool "simple-oneshot n=3: {0,1}{2}" true
    (classes (module Timestamp.Simple_oneshot) ~n:3 = [| 0; 0; 2 |]);
  Util.check_bool "lamport n=3: all singletons" true
    (classes (module Timestamp.Lamport) ~n:3 = [| 0; 1; 2 |])

(* The DFS hot path must not allocate: {!Shm.Sim.fingerprint} is called at
   every visited configuration.  Same pinning pattern as the disarmed-hooks
   test; the slack absorbs the boxed Gc.minor_words readings. *)
let fingerprint_no_alloc () =
  let n = 3 in
  let module T = Timestamp.Simple_oneshot in
  let supplier ~pid ~call = T.program ~n ~pid ~call in
  let cfg =
    Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
  in
  let cfg =
    Shm.Schedule.apply supplier cfg
      [ Shm.Schedule.Invoke 0; Shm.Schedule.Step 0; Shm.Schedule.Invoke 1 ]
  in
  let acc = ref 0 in
  let rounds = 10_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    acc := !acc lxor Shm.Sim.fingerprint cfg
  done;
  let w1 = Gc.minor_words () in
  Sys.opaque_identity !acc |> ignore;
  Util.check_bool
    (Printf.sprintf "fingerprint allocated %.0f minor words" (w1 -. w0))
    true
    (w1 -. w0 < 64.)

(* Verdicts are invariant under the quotient: for correct objects every
   (flags x symmetry) combination matches the exhaustive baseline. *)
let verdicts_symmetry_invariant () =
  let check (type v r) name
      (module T : Timestamp.Intf.S with type value = v and type result = r)
      ~n ~calls =
    let baseline =
      run_engine ~dedup:false ~reduction:false ~symmetry:false ~domains:1
        (module T) ~n ~calls
    in
    (match baseline with
     | Shm.Explore.Ok stats ->
       Util.check_bool (name ^ ": baseline exhaustive") true stats.exhaustive
     | Shm.Explore.Counterexample _ ->
       Alcotest.failf "%s: baseline found an unexpected counterexample" name);
    List.iter
      (fun (label, dedup, reduction, domains) ->
         List.iter
           (fun symmetry ->
              let r =
                run_engine ~dedup ~reduction ~symmetry ~domains (module T) ~n
                  ~calls
              in
              Util.check_bool
                (Printf.sprintf "%s/%s/sym=%b: verdict matches baseline" name
                   label symmetry)
                true
                (outcome_signature baseline = outcome_signature r);
              match r with
              | Shm.Explore.Ok s ->
                Util.check_bool
                  (Printf.sprintf "%s/%s/sym=%b: exhaustive" name label
                     symmetry)
                  true s.exhaustive
              | Shm.Explore.Counterexample _ -> assert false)
           [ false; true ])
      flag_combos
  in
  check "simple-oneshot n=2" (module Timestamp.Simple_oneshot) ~n:2 ~calls:1;
  check "simple-oneshot n=3" (module Timestamp.Simple_oneshot) ~n:3 ~calls:1;
  check "simple-swap n=3" (module Timestamp.Simple_swap) ~n:3 ~calls:1;
  check "sqrt n=2" (module Timestamp.Sqrt.One_shot) ~n:2 ~calls:1

(* Seeded fault injection (pid-targeted, hence symmetry-breaking for the
   corrupted pid): the quotient must not change the verdict whatever the
   seed does, under every flag combination. *)
let injected (type v) ~seed
    (module T : Timestamp.Intf.S with type value = v and type result = int) :
  (module Timestamp.Intf.S with type value = v and type result = int) =
  (module struct
    include (val (module T
                   : Timestamp.Intf.S
                   with type value = v and type result = int))

    let name = Printf.sprintf "%s-injected-%d" T.name seed

    let program ~n ~pid ~call =
      let p = T.program ~n ~pid ~call in
      if seed mod 3 <> 0 && pid = seed mod n then
        Shm.Prog.map (fun ts -> ts + 1_000_000) p
      else p
  end)

let injected_symmetry_property =
  Util.qtest ~count:25 "quotient preserves verdicts on fault injections"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
       let n = 3 in
       let m = injected ~seed (module Timestamp.Simple_oneshot) in
       let reference =
         outcome_signature
           (run_engine ~dedup:true ~reduction:true ~symmetry:false ~domains:1
              m ~n ~calls:1)
       in
       List.for_all
         (fun (_, dedup, reduction, domains) ->
            List.for_all
              (fun symmetry ->
                 outcome_signature
                   (run_engine ~dedup ~reduction ~symmetry ~domains m ~n
                      ~calls:1)
                 = reference)
              [ false; true ])
         flag_combos)

(* A symmetry-preserving bug (every process returns the same constant, so
   all programs stay structurally identical and the quotient is active):
   the counterexample must be found with the quotient on, and the reported
   schedule must replay verbatim to a rejected configuration — the paper
   trail for "the inverse-permutation mapping is the identity". *)
let symmetric_bug_cex_replays () =
  let n = 3 in
  let m : (module Timestamp.Intf.S with type value = int and type result = int)
    =
    (module struct
      include Timestamp.Simple_oneshot

      let name = "simple-oneshot-constant"

      let program ~n ~pid ~call =
        Shm.Prog.map (fun _ -> 42) (Timestamp.Simple_oneshot.program ~n ~pid ~call)
    end)
  in
  let (module B) = m in
  let supplier ~pid ~call = B.program ~n ~pid ~call in
  let cfg0 =
    Shm.Sim.create ~n ~num_regs:(B.num_registers ~n) ~init:(B.init_value ~n)
  in
  let classes =
    Shm.Schedule.symmetry_classes supplier ~n
      ~calls_per_proc:(Array.make n 1)
  in
  Util.check_bool "constant bug keeps all processes interchangeable" true
    (classes = [| 0; 0; 2 |]);
  List.iter
    (fun symmetry ->
       match
         run_engine ~dedup:true ~reduction:true ~symmetry ~domains:1 m ~n
           ~calls:1
       with
       | Shm.Explore.Ok _ ->
         Alcotest.failf "sym=%b: symmetric bug not caught" symmetry
       | Shm.Explore.Counterexample { schedule; at_leaf; _ } ->
         Util.check_bool (Printf.sprintf "sym=%b: caught at a leaf" symmetry)
           true at_leaf;
         let replayed = Shm.Schedule.apply supplier cfg0 schedule in
         Util.check_bool
           (Printf.sprintf "sym=%b: schedule replays to a rejected config"
              symmetry)
           false (checker_leaf m replayed))
    [ false; true ]

(* Invariant (non-leaf) counterexamples on a symmetric workload survive the
   quotient and stay replayable. *)
let invariant_cex_with_quotient () =
  let n = 2 in
  let module T = Timestamp.Simple_oneshot in
  let supplier ~pid ~call = T.program ~n ~pid ~call in
  let cfg0 =
    Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
  in
  let invariant cfg = Shm.Sim.reg cfg 0 = 0 (* fails after the first write *) in
  List.iter
    (fun symmetry ->
       match
         Shm.Explore.explore ~dedup:true ~reduction:true ~symmetry ~domains:1
           ~supplier ~calls_per_proc:[| 1; 1 |] ~invariant cfg0
       with
       | Shm.Explore.Ok _ -> Alcotest.fail "invariant cannot hold"
       | Shm.Explore.Counterexample { schedule; at_leaf; _ } ->
         Util.check_bool (Printf.sprintf "sym=%b: not at leaf" symmetry) false
           at_leaf;
         Util.check_bool (Printf.sprintf "sym=%b: replay violates" symmetry)
           false
           (invariant (Shm.Schedule.apply supplier cfg0 schedule)))
    [ false; true ]

(* Statistics contract: the quotient reports itself.  On a symmetric
   workload [symmetric] is set, orbit merges are counted, and the quotient
   never expands more than plain dedup; on an asymmetric workload (or with
   the flag off) it is inert. *)
let canon_stats () =
  let sym =
    run_engine ~dedup:true ~reduction:true ~symmetry:true ~domains:1
      (module Timestamp.Simple_oneshot) ~n:3 ~calls:1
  and nosym =
    run_engine ~dedup:true ~reduction:true ~symmetry:false ~domains:1
      (module Timestamp.Simple_oneshot) ~n:3 ~calls:1
  in
  (match sym, nosym with
   | Shm.Explore.Ok s, Shm.Explore.Ok ns ->
     Util.check_bool "quotient active on symmetric workload" true s.symmetric;
     Util.check_bool "orbit merges counted" true (s.canon_hits > 0);
     Util.check_bool "quotient expands no more than plain dedup" true
       (s.expanded <= ns.expanded);
     Util.check_bool "flag off: not symmetric" false ns.symmetric;
     Util.check_int "flag off: no orbit merges" 0 ns.canon_hits
   | _ -> Alcotest.fail "unexpected counterexample");
  match
    run_engine ~dedup:true ~reduction:true ~symmetry:true ~domains:1
      (module Timestamp.Lamport) ~n:2 ~calls:1
  with
  | Shm.Explore.Ok s ->
    Util.check_bool "lamport: detection finds no symmetry" false s.symmetric;
    Util.check_int "lamport: no orbit merges" 0 s.canon_hits
  | Shm.Explore.Counterexample _ -> Alcotest.fail "unexpected counterexample"

(* E1 regression: the checkpointed adversary (prefix caches, memoized
   side checks, O(1) signature maintenance) must reproduce the covered
   counts and schedule lengths of the replay-from-scratch engine exactly —
   checkpoints are reuse, never approximation.  Pins captured from the
   pre-checkpointing engine at n <= 14. *)
let e1_pins =
  (* impl, n, k, covered, schedule_length *)
  [ ("lamport", 6, 3, 3, 57); ("lamport", 8, 4, 4, 157);
    ("lamport", 10, 5, 5, 393); ("lamport", 12, 6, 6, 933);
    ("lamport", 14, 7, 7, 2145);
    ("efr", 6, 3, 3, 50); ("efr", 8, 4, 4, 142); ("efr", 10, 5, 5, 362);
    ("efr", 12, 6, 6, 870); ("efr", 14, 7, 7, 2018);
    ("vector", 6, 3, 3, 46); ("vector", 8, 4, 4, 140);
    ("vector", 10, 5, 5, 374); ("vector", 12, 6, 6, 924);
    ("vector", 14, 7, 7, 2174);
    ("snapshot", 6, 3, 3, 161); ("snapshot", 8, 4, 4, 483);
    ("snapshot", 10, 5, 5, 1285); ("snapshot", 12, 6, 6, 3183);
    ("snapshot", 14, 7, 7, 7537) ]

let e1_regression () =
  let run_one (type v r)
      (module T : Timestamp.Intf.S with type value = v and type result = r)
      ~n ~k =
    let supplier ~pid ~call = T.program ~n ~pid ~call in
    let cfg =
      Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
    in
    match Covering.Longlived_adversary.run ~fuel:1_000_000 ~supplier ~cfg ~k () with
    | Error e -> Alcotest.failf "%s n=%d: %s" T.name n e
    | Ok o -> (o.covered, o.schedule_length)
  in
  List.iter
    (fun (impl, n, k, covered, len) ->
       let got =
         match impl with
         | "lamport" -> run_one (module Timestamp.Lamport) ~n ~k
         | "efr" -> run_one (module Timestamp.Efr) ~n ~k
         | "vector" -> run_one (module Timestamp.Vector_ts) ~n ~k
         | "snapshot" -> run_one (module Timestamp.Snapshot_ts) ~n ~k
         | _ -> assert false
       in
       Util.check_bool
         (Printf.sprintf "E1 %s n=%d: covered=%d len=%d (got %d, %d)" impl n
            covered len (fst got) (snd got))
         true
         (got = (covered, len)))
    e1_pins

let suite =
  ( "explore-v3",
    [ Util.case "symmetry detection partitions by structural key"
        symmetry_detection;
      Util.case "fingerprint allocates nothing" fingerprint_no_alloc;
      Util.slow_case "verdicts invariant under the quotient (correct objects)"
        verdicts_symmetry_invariant;
      injected_symmetry_property;
      Util.case "symmetric bug: counterexample replays verbatim"
        symmetric_bug_cex_replays;
      Util.case "invariant counterexamples survive the quotient"
        invariant_cex_with_quotient;
      Util.case "quotient statistics contract" canon_stats;
      Util.slow_case "E1 checkpointed adversary reproduces exact pins"
        e1_regression ] )
