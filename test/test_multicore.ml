(* Real-parallelism tests: the same programs on OCaml 5 domains. *)

let exec_matches_sim () =
  (* the atomic interpreter and the simulator agree on solo runs *)
  let n = 6 in
  List.iter
    (fun (Timestamp.Registry.Impl (module T)) ->
       let regs =
         Multicore.Exec.make_regs ~num:(T.num_registers ~n)
           ~init:(T.init_value ~n)
       in
       let atomic_ts =
         List.init n (fun pid ->
             Multicore.Exec.run ~regs (T.program ~n ~pid ~call:0))
       in
       let module H = Timestamp.Harness.Make (T) in
       let _, sim_ts = H.run_sequential ~n in
       List.iter2
         (fun a b ->
            Util.check_bool (T.name ^ ": same results") true (T.equal_ts a b))
         atomic_ts sim_ts)
    Timestamp.Registry.all

let exec_counts_ops () =
  let p = Shm.Prog.bind (Shm.Prog.write 0 1) (fun () -> Shm.Prog.read 0) in
  let regs = Multicore.Exec.make_regs ~num:1 ~init:0 in
  let v, ops = Multicore.Exec.run_counting ~regs p in
  Util.check_int "value" 1 v;
  Util.check_int "ops" 2 ops

let stress impl_name (module T : Timestamp.Intf.S) ~n ~calls () =
  let module S = Multicore.Stress.Make (T) in
  match S.run_and_check ~n ~calls () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (impl_name ^ ": " ^ e)

let stress_repeated impl_name m ~n ~calls ~rounds () =
  for _ = 1 to rounds do
    stress impl_name m ~n ~calls ()
  done

let suite =
  ( "multicore",
    [ Util.case "atomic interpreter matches simulator" exec_matches_sim;
      Util.case "run_counting counts" exec_counts_ops;
      Util.slow_case "stress sqrt one-shot"
        (stress_repeated "sqrt" (module Timestamp.Sqrt.One_shot) ~n:8 ~calls:1
           ~rounds:20);
      Util.slow_case "stress simple one-shot"
        (stress_repeated "simple" (module Timestamp.Simple_oneshot) ~n:8
           ~calls:1 ~rounds:20);
      Util.slow_case "stress lamport"
        (stress_repeated "lamport" (module Timestamp.Lamport) ~n:4 ~calls:100
           ~rounds:5);
      Util.slow_case "stress efr"
        (stress_repeated "efr" (module Timestamp.Efr) ~n:4 ~calls:100 ~rounds:5);
      Util.slow_case "stress vector"
        (stress_repeated "vector" (module Timestamp.Vector_ts) ~n:4 ~calls:50
           ~rounds:5) ] )
