The CLI lists every registered implementation with its register formulas.

  $ ts_cli list
  name               kind        registers (n=16, 64, 256)
  ------------------------------------------------------------
  simple-oneshot     one-shot    8, 32, 128
  simple-swap-oneshot one-shot    8, 32, 128
  sqrt-oneshot       one-shot    8, 16, 32
  lamport-longlived  long-lived  16, 64, 256
  efr-longlived      long-lived  15, 63, 255
  vector-longlived   long-lived  16, 64, 256
  snapshot-longlived long-lived  16, 64, 256

A seeded run is deterministic and self-checking.

  $ ts_cli run -i efr-longlived -n 3 -c 2
  implementation: efr-longlived   n=3 seed=1
    p2.0 -> O0.0
    p1.0 -> E1
    p0.0 -> E2
    p2.1 -> O2.1
    p1.1 -> E3
    p0.1 -> E4
  compare-consistency: OK (12 ordered pairs)
  registers: written=2 touched=2 provisioned=2

The long-lived covering construction reaches a (3,k)-configuration.

  $ ts_cli adversary long-lived -i lamport-longlived -n 8
  lamport-longlived n=8: reached a (3,4)-configuration covering 4 registers (>= 2 required; floor(n/6) = 1) via a 157-action schedule
    1 |####    
      +--------
       12345678

Exhaustive exploration of a tiny instance verifies every schedule.

  $ ts_cli explore -i simple-oneshot -n 2
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges)

--no-symmetry disables the process-symmetry quotient (more states, same
verdict); on an asymmetric workload the quotient is inert and the stats
line omits the merges clause.

  $ ts_cli explore -i simple-oneshot -n 2 --no-symmetry
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 8 complete schedules (49 configurations expanded, 2 dedup hits, 12 sleep-set skips, 0 truncated paths)

  $ ts_cli explore -i efr-longlived -n 2 -c 1
  efr-longlived n=2 calls=1: EXHAUSTIVELY VERIFIED over 6 complete schedules (33 configurations expanded, 0 dedup hits, 8 sleep-set skips, 0 truncated paths)

The canonicalization counters flow through the metrics sidecar and pass
the obs validator.

  $ ts_cli explore -i simple-oneshot -n 2 --metrics-out metrics.jsonl
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges)
  $ grep -E '"explore\.(canon_hits|symmetric)"' metrics.jsonl
  {"schema_version": 1,"registry": "ts_cli","name": "explore.canon_hits","kind": "gauge","value": 5.0,"max": 5.0}
  {"schema_version": 1,"registry": "ts_cli","name": "explore.symmetric","kind": "gauge","value": 1.0,"max": 1.0}
  $ ts_cli obs --validate metrics.jsonl
  metrics.jsonl: OK (20 JSONL documents)

A seeded differential fuzz run is deterministic and byte-stable.

  $ ts_cli fuzz --seed 42 --iters 50 -n 4 -c 2
  fuzz seed=42 n=4 calls=2 iters=50: differential over 7 implementations
  fuzz: OK — 50 schedules (15455 actions), 1892 hb pairs checked, 0 violations

A planted mutant is caught, shrunk to a handful of actions, and the repro
round-trips through a file and --replay.

  $ ts_cli fuzz --mutant mutant-lost-increment --seed 42 --iters 200 -n 4 -c 2 --repro-out repro.json
  fuzz seed=42 n=4 calls=2 iters=200: mutant mutant-lost-increment
  fuzz: VIOLATION (mutant-lost-increment, iteration 0)
    p0.0(->1) happens before, but compare(t1,t2)=false p1.0(->1)
    shrunk: 330 -> 5 actions, n=2 (13 accepted / 53 attempted reductions)
    repro (OCaml): [ Invoke 0; Step 0; Step 0; Step 0; Invoke 1 ]
    repro written to repro.json
  [1]

  $ ts_cli fuzz --replay repro.json
  repro repro.json: VIOLATION reproduced (mutant-lost-increment, 5 actions)
    p0.0(->1) happens before, but compare(t1,t2)=false p1.0(->1)

Tiny instances fall back to exhaustive exploration automatically.

  $ ts_cli fuzz --seed 1 -n 2 -c 1
  fuzz seed=1 n=2 calls=1 iters=1000: differential over 7 implementations
  fuzz: OK — state space small, exhaustively explored instead (every schedule checked)

The timestamp service serves a sequential session deterministically and
checks the served timestamps.

  $ ts_cli serve -i lamport-longlived -n 4 -r 5
  service: lamport-longlived  n=4 shards=1 batch_max=64
    req p0.0 (shard 0) -> 1
    req p0.1 (shard 0) -> 2
    req p0.2 (shard 0) -> 3
    req p0.3 (shard 0) -> 4
    req p0.4 (shard 0) -> 5
  serve: OK (5 requests, compare chain holds)

A one-shot object consumes a fresh process id per request.

  $ ts_cli serve -i sqrt-oneshot -n 4 -r 4
  service: sqrt-oneshot  n=4 shards=1 batch_max=64
    req p0.0 (shard 0) -> (1,0)
    req p1.0 (shard 0) -> (2,0)
    req p2.0 (shard 0) -> (2,1)
    req p3.0 (shard 0) -> (3,0)
  serve: OK (4 requests, compare chain holds)

Every subcommand shares one uniform unknown-implementation error.

  $ ts_cli run -i nope
  ts_cli: option '-i': unknown implementation "nope", try: simple-oneshot,
          simple-swap-oneshot, sqrt-oneshot, lamport-longlived, efr-longlived,
          vector-longlived, snapshot-longlived
  Usage: ts_cli run [OPTION]…
  Try 'ts_cli run --help' or 'ts_cli --help' for more information.
  [124]
