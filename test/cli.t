The CLI lists every registered implementation with its register formulas.

  $ ts_cli list
  name               kind        registers (n=16, 64, 256)
  ------------------------------------------------------------
  simple-oneshot     one-shot    8, 32, 128
  simple-swap-oneshot one-shot    8, 32, 128
  sqrt-oneshot       one-shot    8, 16, 32
  lamport-longlived  long-lived  16, 64, 256
  efr-longlived      long-lived  15, 63, 255
  vector-longlived   long-lived  16, 64, 256
  snapshot-longlived long-lived  16, 64, 256

A seeded run is deterministic and self-checking.

  $ ts_cli run -i efr-longlived -n 3 -c 2
  implementation: efr-longlived   n=3 seed=1
    p2.0 -> O0.0
    p1.0 -> E1
    p0.0 -> E2
    p2.1 -> O2.1
    p1.1 -> E3
    p0.1 -> E4
  compare-consistency: OK (12 ordered pairs)
  registers: written=2 touched=2 provisioned=2

The long-lived covering construction reaches a (3,k)-configuration.

  $ ts_cli adversary long-lived -i lamport-longlived -n 8
  lamport-longlived n=8: reached a (3,4)-configuration covering 4 registers (>= 2 required; floor(n/6) = 1) via a 157-action schedule
    1 |####    
      +--------
       12345678

Exhaustive exploration of a tiny instance verifies every schedule.

  $ ts_cli explore -i simple-oneshot -n 2
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges)

--no-symmetry disables the process-symmetry quotient (more states, same
verdict); on an asymmetric workload the quotient is inert and the stats
line omits the merges clause.

  $ ts_cli explore -i simple-oneshot -n 2 --no-symmetry
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 8 complete schedules (49 configurations expanded, 2 dedup hits, 12 sleep-set skips, 0 truncated paths)

  $ ts_cli explore -i efr-longlived -n 2 -c 1
  efr-longlived n=2 calls=1: EXHAUSTIVELY VERIFIED over 6 complete schedules (33 configurations expanded, 0 dedup hits, 8 sleep-set skips, 0 truncated paths)

--dedup-cap bounds the dedup table; the stats line then reports evictions.
--domains picks the parallel engine (steal-frontier by default, --no-steal
for static root splitting); the merged verdict is engine-independent.

  $ ts_cli explore -i simple-oneshot -n 2 --dedup-cap 3
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 8 complete schedules (49 configurations expanded, 2 dedup hits, 12 sleep-set skips, 0 truncated paths, 2 symmetry merges, 45 evictions (cap 3))

  $ ts_cli explore -i simple-oneshot -n 2 --domains 2 | head -1
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges, 2 domains)

  $ ts_cli explore -i simple-oneshot -n 2 --domains 2 --no-steal | head -1
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges, 2 domains)

The canonicalization counters flow through the metrics sidecar and pass
the obs validator.

  $ ts_cli explore -i simple-oneshot -n 2 --metrics-out metrics.jsonl
  simple-oneshot n=2 calls=1: EXHAUSTIVELY VERIFIED over 4 complete schedules (27 configurations expanded, 4 dedup hits, 6 sleep-set skips, 0 truncated paths, 5 symmetry merges)
  $ grep -E '"explore\.(canon_hits|symmetric)"' metrics.jsonl
  {"schema_version": 1,"registry": "ts_cli","name": "explore.canon_hits","kind": "gauge","value": 5.0,"max": 5.0}
  {"schema_version": 1,"registry": "ts_cli","name": "explore.symmetric","kind": "gauge","value": 1.0,"max": 1.0}
  $ ts_cli obs --validate metrics.jsonl
  metrics.jsonl: OK (20 JSONL documents)

A seeded differential fuzz run is deterministic and byte-stable.

  $ ts_cli fuzz --seed 42 --iters 50 -n 4 -c 2
  fuzz seed=42 n=4 calls=2 iters=50: differential over 7 implementations
  fuzz: OK — 50 schedules (15455 actions), 1892 hb pairs checked, 0 violations

A planted mutant is caught, shrunk to a handful of actions, and the repro
round-trips through a file and --replay.

  $ ts_cli fuzz --mutant mutant-lost-increment --seed 42 --iters 200 -n 4 -c 2 --repro-out repro.json
  fuzz seed=42 n=4 calls=2 iters=200: mutant mutant-lost-increment
  fuzz: VIOLATION (mutant-lost-increment, iteration 0)
    p0.0(->1) happens before, but compare(t1,t2)=false p1.0(->1)
    shrunk: 330 -> 5 actions, n=2 (13 accepted / 53 attempted reductions)
    repro (OCaml): [ Invoke 0; Step 0; Step 0; Step 0; Invoke 1 ]
    repro written to repro.json
  [1]

  $ ts_cli fuzz --replay repro.json
  repro repro.json: VIOLATION reproduced (mutant-lost-increment, 5 actions)
    p0.0(->1) happens before, but compare(t1,t2)=false p1.0(->1)

Tiny instances fall back to exhaustive exploration automatically.

  $ ts_cli fuzz --seed 1 -n 2 -c 1
  fuzz seed=1 n=2 calls=1 iters=1000: differential over 7 implementations
  fuzz: OK — state space small, exhaustively explored instead (every schedule checked)

verify-svc model-checks the serving layer's concurrency patterns as Shm
programs; the quotient kicks in on the symmetric stop handshake.

  $ ts_cli verify-svc -m tick -m stop -n 2
  model tick n=2 (4 procs): EXHAUSTIVELY VERIFIED over 288 complete schedules (4138 configurations expanded, 0 dedup hits, 3413 sleep-set skips, 0 truncated paths)
  model stop n=2 (4 procs): EXHAUSTIVELY VERIFIED over 576 complete schedules (9251 configurations expanded, 1170 dedup hits, 7415 sleep-set skips, 0 truncated paths, 752 symmetry merges)

  $ ts_cli verify-svc -m stop -n 2 --no-symmetry
  model stop n=2 (4 procs): EXHAUSTIVELY VERIFIED over 1152 complete schedules (18335 configurations expanded, 2164 dedup hits, 14650 sleep-set skips, 0 truncated paths)

  $ ts_cli verify-svc -m tick -n 2 --dedup-cap 64
  model tick n=2 (4 procs): EXHAUSTIVELY VERIFIED over 288 complete schedules (4138 configurations expanded, 0 dedup hits, 3413 sleep-set skips, 0 truncated paths, 4074 evictions (cap 64))

A planted model mutant is caught, shrunk, and the repro round-trips
through a file and --replay.

  $ ts_cli verify-svc -m tick --mutant tick-early-reserve -n 2 --repro-out m.json
  model tick mutant tick-early-reserve n=2: COUNTEREXAMPLE (invariant), schedule of 10 actions
    shrunk: 10 -> 7 actions
    invariant violation
      invoke 0
      step 0
      step 0
      invoke 2
      step 2
      step 2
      step 2
    repro written to m.json
  [1]

  $ ts_cli verify-svc --replay m.json
  repro m.json: VIOLATION reproduced (model/tick/tick-early-reserve, 7 actions)
    invariant violation

The timestamp service serves a sequential session deterministically and
checks the served timestamps.

  $ ts_cli serve -i lamport-longlived -n 4 -r 5
  service: lamport-longlived  n=4 shards=1 batch_max=64
    req p0.0 (shard 0) -> 1
    req p0.1 (shard 0) -> 2
    req p0.2 (shard 0) -> 3
    req p0.3 (shard 0) -> 4
    req p0.4 (shard 0) -> 5
  serve: OK (5 requests, compare chain holds)

A one-shot object consumes a fresh process id per request.

  $ ts_cli serve -i sqrt-oneshot -n 4 -r 4
  service: sqrt-oneshot  n=4 shards=1 batch_max=64
    req p0.0 (shard 0) -> (1,0)
    req p1.0 (shard 0) -> (2,0)
    req p2.0 (shard 0) -> (2,1)
    req p3.0 (shard 0) -> (3,0)
  serve: OK (4 requests, compare chain holds)

Every subcommand shares one uniform unknown-implementation error.

  $ ts_cli run -i nope
  ts_cli: option '-i': unknown implementation "nope", try: simple-oneshot,
          simple-swap-oneshot, sqrt-oneshot, lamport-longlived, efr-longlived,
          vector-longlived, snapshot-longlived
  Usage: ts_cli run [OPTION]…
  Try 'ts_cli run --help' or 'ts_cli --help' for more information.
  [124]

--append accumulates JSONL sidecars across runs instead of truncating;
the validator sees both batches.

  $ ts_cli explore -i simple-oneshot -n 2 --metrics-out m.jsonl > /dev/null
  $ ts_cli obs --validate m.jsonl
  m.jsonl: OK (20 JSONL documents)
  $ ts_cli explore -i simple-oneshot -n 2 --metrics-out m.jsonl --append > /dev/null
  $ ts_cli obs --validate m.jsonl
  m.jsonl: OK (40 JSONL documents)

The obs validator recognises the telemetry time-series schema, and
ts_cli top renders a finished stream as a per-shard table (rps from the
served deltas, global latency on the total row, "-" where a gauge is
absent).

  $ cat > tel.jsonl <<'EOF'
  > {"schema_version": 1,"kind": "header","interval_us": 10000,"series": ["s0.depth","s0.served","s0.batches","s0.chunks","s0.batch_p50","s0.lat_p50_us","s0.lat_p99_us","s1.depth","s1.served","s1.batches","s1.chunks","s1.batch_p50","s1.lat_p50_us","s1.lat_p99_us","svc.pool","lat.p50_us","lat.p99_us"],"meta": {"backend": "boxed","shards": 2,"batch_max": 16}}
  > {"kind": "sample","t_us": 10000.0,"v": [3.0,40.0,10.0,10.0,4.0,119.0,300.0,1.0,38.0,10.0,10.0,4.0,125.0,410.0,8.0,120.5,340.0]}
  > {"kind": "event","event": "stall","rule": "s1","t_us": 15000.0,"depth": 2.0}
  > {"kind": "sample","t_us": 20000.0,"v": [0.0,90.0,22.0,22.0,4.0,117.0,298.0,0.0,86.0,21.0,21.0,4.0,124.0,402.0,8.0,118.0,355.0]}
  > {"kind": "end","samples": 2,"stalls": 1}
  > EOF
  $ ts_cli obs --validate tel.jsonl
  tel.jsonl: OK (telemetry schema 1: 17 series, 2 samples, 1 events, 1 stalls)
  $ ts_cli top --file tel.jsonl --once
  telemetry: tel.jsonl  (backend=boxed shards=2 batch_max=16)
  t=+20.0ms  samples=2  events=1  stalls=1  [ended]
  shard          rps   depth  batch_p50  lat_p50_us  lat_p99_us
  s0            5000       0        4.0       117.0       298.0
  s1            4800       0        4.0       124.0       402.0
  total         9800       0          -       118.0       355.0

A truncated stream (no end marker) still validates and renders live.

  $ head -2 tel.jsonl > live.jsonl
  $ ts_cli obs --validate live.jsonl
  live.jsonl: OK (telemetry schema 1: 17 series, 1 samples, 0 events, 0 stalls)
  $ ts_cli top --file live.jsonl --once
  telemetry: live.jsonl  (backend=boxed shards=2 batch_max=16)
  t=+10.0ms  samples=1  events=0  stalls=0  [live]
  shard          rps   depth  batch_p50  lat_p50_us  lat_p99_us
  s0            4000       3        4.0       119.0       300.0
  s1            3800       1        4.0       125.0       410.0
  total         7800       4          -       120.5       340.0

Oversized shard counts are refused up front with a clean error instead
of aborting inside Domain.spawn.

  $ ts_cli serve -i lamport-longlived -n 4 --shards 100000
  ts_cli: serve: --shards 100000 exceeds this host's recommended domain count; reduce --shards
  [1]
  $ ts_cli serve -i lamport-longlived -n 4 --shards 0
  ts_cli: serve: --shards must be at least 1
  [1]

The TCP transport needs an address, and reports an unreachable server
cleanly.

  $ ts_cli loadgen -i lamport-longlived --transport tcp
  ts_cli: loadgen: --transport tcp requires --addr
  [1]
  $ ts_cli loadgen -i lamport-longlived --transport tcp --addr unix:./nosock.sock
  ts_cli: loadgen: cannot connect to unix:./nosock.sock: No such file or directory
  [1]

A network serve exports per-connection counter groups (c<slot>.*) next
to the service shards; top renders them as a second table.

  $ cat > net.jsonl <<'JSONL'
  > {"schema_version": 1,"kind": "header","interval_us": 10000,"series": ["s0.depth","s0.served","c0.conns","c0.requests","c0.stamps","c0.leases","c0.bytes_in","c0.bytes_out","c1.conns","c1.requests","c1.stamps","c1.leases","c1.bytes_in","c1.bytes_out"],"meta": {"backend": "boxed","shards": 1,"addr": "unix:/tmp/ts.sock"}}
  > {"kind": "sample","t_us": 10000.0,"v": [0.0,100.0,1.0,50.0,100.0,3.0,800.0,4000.0,1.0,40.0,40.0,0.0,640.0,2400.0]}
  > {"kind": "sample","t_us": 20000.0,"v": [0.0,240.0,1.0,120.0,240.0,7.0,1920.0,9600.0,1.0,90.0,90.0,0.0,1440.0,5400.0]}
  > {"kind": "end","samples": 2,"stalls": 0}
  > JSONL
  $ ts_cli obs --validate net.jsonl
  net.jsonl: OK (telemetry schema 1: 14 series, 2 samples, 0 events, 0 stalls)
  $ ts_cli top --file net.jsonl --once
  telemetry: net.jsonl  (backend=boxed shards=1 addr=unix:/tmp/ts.sock)
  t=+20.0ms  samples=2  events=0  stalls=0  [ended]
  shard          rps   depth  batch_p50  lat_p50_us  lat_p99_us
  s0           14000       0          -           -           -
  total        14000       0          -           -           -
  conn       req_rps   conns     stamps   leases    bytes_in   bytes_out
  c0            7000       1        240        7        1920        9600
  c1            5000       1         90        0        1440        5400
