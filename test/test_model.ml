(* Svc.Model: the serving-layer models under the explorer — clean-model
   verdicts, engine equivalence (steal frontier, root split, capped
   dedup), planted-mutant kills with shrunk schedules, the checked-in
   model repro corpus, a qcheck differential pinning the mpsc model to
   the real [Svc.Mpsc], and the Rmw/Await program semantics the models
   lean on. *)

let stats_of outcome =
  match outcome with
  | Stdlib.Ok (Shm.Explore.Ok s) -> s
  | Stdlib.Ok (Shm.Explore.Counterexample { schedule; at_leaf; _ }) ->
    Alcotest.fail
      (Printf.sprintf "unexpected counterexample (%s, %d actions)"
         (if at_leaf then "leaf" else "invariant")
         (List.length schedule))
  | Stdlib.Error e -> Alcotest.fail e

let cex_of outcome =
  match outcome with
  | Stdlib.Ok (Shm.Explore.Counterexample { schedule; _ }) -> schedule
  | Stdlib.Ok (Shm.Explore.Ok _) -> Alcotest.fail "mutant survived exploration"
  | Stdlib.Error e -> Alcotest.fail e

(* The three cheap models verify exhaustively at n = 2 in-process (mpsc
   n = 2 takes seconds and is pinned by the committed bench matrix and the
   CLI smoke instead).  The stop model is the symmetric one: its anonymous
   clients must engage the quotient; pid-capturing models must not. *)
let clean_models_verify () =
  List.iter
    (fun (model, expect_symmetric) ->
       let s = stats_of (Svc.Model.verify model ~n:2) in
       let name = Svc.Model.name model in
       Util.check_bool (name ^ " exhaustive") true s.exhaustive;
       Util.check_int (name ^ " untruncated") 0 s.truncated_paths;
       Util.check_bool (name ^ " quotient") expect_symmetric s.symmetric;
       Util.check_bool (name ^ " explored something") true (s.paths > 0))
    [ (Svc.Model.Pool, false); (Svc.Model.Tick, false); (Svc.Model.Stop, true) ]

(* Verdicts are engine-independent: sequential, steal frontier and the
   root-split engine agree on the clean stop model, and a capped visited
   table (which must evict at this size) changes work, never the verdict. *)
let engines_agree_on_verdicts () =
  let seq = stats_of (Svc.Model.verify Svc.Model.Stop ~n:2) in
  let steal = stats_of (Svc.Model.verify ~domains:2 Svc.Model.Stop ~n:2) in
  let split =
    stats_of (Svc.Model.verify ~domains:2 ~steal:false Svc.Model.Stop ~n:2)
  in
  let capped = stats_of (Svc.Model.verify ~dedup_cap:64 Svc.Model.Stop ~n:2) in
  List.iter
    (fun (label, (s : Shm.Explore.stats)) ->
       Util.check_bool (label ^ " exhaustive") true s.exhaustive;
       Util.check_bool (label ^ " explored something") true (s.paths > 0))
    [ ("sequential", seq); ("steal", steal); ("root-split", split);
      ("capped", capped) ];
  Util.check_bool "cap of 64 actually evicts" true (capped.evictions > 0);
  Util.check_int "uncapped never evicts" 0 seq.evictions;
  (* and on the failing side: every mutant dies under every engine *)
  List.iter
    (fun (m : Svc.Model.mutant) ->
       List.iter
         (fun (label, verify) ->
            let cex = cex_of (verify ~mutant:m.m_name m.m_model ~n:2) in
            Util.check_bool
              (Printf.sprintf "%s under %s dies" m.m_name label)
              true (cex <> []))
         [ ( "sequential",
             fun ~mutant model ~n -> Svc.Model.verify ~mutant model ~n );
           ( "steal",
             fun ~mutant model ~n ->
               Svc.Model.verify ~domains:2 ~mutant model ~n );
           ( "capped",
             fun ~mutant model ~n ->
               Svc.Model.verify ~dedup_cap:64 ~mutant model ~n ) ])
    Svc.Model.mutants

(* Each planted mutant is killed, the counterexample replays, and the
   shrinker gets it small.  The live bound matches the fuzz harness (12):
   greedy shrinking from a DFS counterexample can stall a little above the
   true minimum.  The checked-in corpus holds the hand-minimized <= 10
   schedules and is pinned below. *)
let mutant_kills () =
  List.iter
    (fun (m : Svc.Model.mutant) ->
       let cex = cex_of (Svc.Model.verify ~mutant:m.m_name m.m_model ~n:2) in
       (match Svc.Model.replay ~mutant:m.m_name m.m_model ~n:2 cex with
        | Stdlib.Ok (Some _) -> ()
        | Stdlib.Ok None ->
          Alcotest.fail (m.m_name ^ ": counterexample does not replay")
        | Stdlib.Error e -> Alcotest.fail (m.m_name ^ ": " ^ e));
       match Svc.Model.shrink ~mutant:m.m_name m.m_model ~n:2 cex with
       | None -> Alcotest.fail (m.m_name ^ ": shrinker lost the violation")
       | Some (shrunk, _why) ->
         Util.check_bool
           (Printf.sprintf "%s shrunk to <= 12 actions (got %d)" m.m_name
              (List.length shrunk))
           true
           (List.length shrunk <= 12);
         (match Svc.Model.replay ~mutant:m.m_name m.m_model ~n:2 shrunk with
          | Stdlib.Ok (Some _) -> ()
          | _ -> Alcotest.fail (m.m_name ^ ": shrunk schedule lost the bug")))
    Svc.Model.mutants

(* The checked-in model corpus (test/repro_corpus/model-*.json): every
   document still violates its mutant, stays short, and does NOT violate
   the clean model (replaying a mutant schedule against the clean program
   may diverge structurally — an [Error] — but must never report a
   violation). *)
let corpus_dir =
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "repro_corpus"
  in
  if Sys.file_exists beside_exe then beside_exe else "repro_corpus"

let model_corpus_replays () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f ->
        String.starts_with ~prefix:"model-" f
        && Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  Util.check_int "one corpus repro per model mutant"
    (List.length Svc.Model.mutants)
    (List.length files);
  List.iter
    (fun file ->
       let path = Filename.concat corpus_dir file in
       match Fuzz.Repro.load path with
       | Error e -> Alcotest.fail (file ^ ": " ^ e)
       | Ok repro ->
         Util.check_bool
           (file ^ " stays <= 10 actions")
           true
           (List.length repro.schedule <= 10);
         (match Svc.Model.replay_repro repro with
          | Stdlib.Ok (Some _) -> ()
          | Stdlib.Ok None ->
            Alcotest.fail (file ^ ": corpus repro no longer violates")
          | Stdlib.Error e -> Alcotest.fail (file ^ ": " ^ e));
         (match Svc.Model.impl_of_string repro.impl with
          | Stdlib.Error e -> Alcotest.fail (file ^ ": " ^ e)
          | Stdlib.Ok (model, _mutant) -> (
              match Svc.Model.replay model ~n:repro.n repro.schedule with
              | Stdlib.Ok (Some why) ->
                Alcotest.fail
                  (file ^ ": clean model also fails: " ^ why)
              | Stdlib.Ok None | Stdlib.Error _ -> ())))
    files

(* Regression for the replay oracle: a schedule that merely stops early —
   running processes blocked but other processes still invokable — is not
   a deadlock (the shrinker once exploited the lenient check to "minimize"
   a mutant kill down to an unrelated 3-action prefix). *)
let replay_prefix_is_not_deadlock () =
  match
    Svc.Model.replay Svc.Model.Tick ~n:2
      [ Shm.Schedule.Invoke 0; Shm.Schedule.Step 0; Shm.Schedule.Step 0 ]
  with
  | Stdlib.Ok None -> ()
  | Stdlib.Ok (Some why) -> Alcotest.fail ("prefix misreported: " ^ why)
  | Stdlib.Error e -> Alcotest.fail e

(* Differential fidelity: a serialized schedule of the mpsc model must
   leave exactly the registers the real [Svc.Mpsc] ends in after the same
   operation sequence — same delivered log, same leftover stack — and both
   sides must agree the run is clean.  (Concurrent interleavings of the
   real structure cannot be scheduled deterministically; serialized runs
   pin the data structure semantics, the explorer covers the
   interleavings.  DESIGN.md section 13 states the full argument.) *)
let mpsc_matches_real_mpsc =
  Util.qtest ~count:200 "mpsc model matches Svc.Mpsc on serialized runs"
    (* a shuffle of: two pushes each by producers 0 and 1, two drains by
       the consumer (pid 2) — exactly the n = 2 model workload *)
    (QCheck2.Gen.shuffle_l [ 0; 0; 1; 1; 2; 2 ])
    (fun ops ->
       let sys =
         match Svc.Model.sys Svc.Model.Mpsc ~n:2 with
         | Stdlib.Ok s -> s
         | Stdlib.Error e -> Alcotest.fail e
       in
       (* model side: run each call to completion in operation order *)
       let progs = Shm.Schedule.programs sys.supplier ~n:sys.procs in
       let cfg =
         List.fold_left
           (fun cfg pid ->
              let cfg = ref (Shm.Sim.invoke cfg ~pid ~program:progs.(pid)) in
              while List.mem pid (Shm.Sim.runnable !cfg) do
                cfg := Shm.Sim.step !cfg pid
              done;
              !cfg)
           (Svc.Model.initial sys) ops
       in
       let model_stack =
         match Shm.Sim.reg cfg 0 with
         | Svc.Model.V_items l -> l
         | _ -> Alcotest.fail "mpsc register 0 is not an item list"
       in
       let model_log =
         match Shm.Sim.reg cfg 1 with
         | Svc.Model.V_items l -> l
         | _ -> Alcotest.fail "mpsc register 1 is not an item list"
       in
       (* model verdict: the same serialized schedule passes replay *)
       let schedule =
         List.concat_map
           (fun pid ->
              [ Shm.Schedule.Invoke pid; Shm.Schedule.Step pid;
                Shm.Schedule.Step pid; Shm.Schedule.Step pid ])
           ops
       in
       (match Svc.Model.replay Svc.Model.Mpsc ~n:2 schedule with
        | Stdlib.Ok None -> ()
        | Stdlib.Ok (Some why) ->
          Alcotest.fail ("model replay found a violation: " ^ why)
        | Stdlib.Error e -> Alcotest.fail ("model replay: " ^ e));
       (* real side: the same operations against the real structure *)
       let q = Svc.Mpsc.create () in
       let seq = Array.make 2 0 in
       let delivered = ref [] in
       List.iter
         (fun pid ->
            if pid = 2 then delivered := !delivered @ Svc.Mpsc.drain q
            else begin
              Svc.Mpsc.push q (pid, seq.(pid));
              seq.(pid) <- seq.(pid) + 1
            end)
         ops;
       let leftover = Svc.Mpsc.drain q in
       (* real verdict: nothing lost, nothing duplicated, FIFO per pid *)
       let all = !delivered @ leftover in
       Util.check_int "real structure loses nothing" 4 (List.length all);
       Util.check_bool "real structure FIFO per producer" true
         (List.filter (fun (p, _) -> p = 0) all = [ (0, 0); (0, 1) ]
          && List.filter (fun (p, _) -> p = 1) all = [ (1, 0); (1, 1) ]);
       (* and the states agree exactly *)
       Util.check_bool "delivered logs agree" true (model_log = !delivered);
       Util.check_bool "leftover stacks agree" true
         (List.rev model_stack = leftover);
       true)

(* Rmw and Await: the Prog operations the models are built from. *)
let rmw_await_semantics () =
  let open Shm.Prog in
  (* rmw returns the OLD value and applies the update atomically *)
  let regs = [| 5 |] in
  let v, steps = run_pure ~regs (rmw 0 (fun x -> x * 10)) in
  Util.check_int "rmw returns old" 5 v;
  Util.check_int "rmw applied the update" 50 regs.(0);
  Util.check_int "rmw is one shared-memory step" 1 steps;
  (* cas success and failure *)
  let ok, _ = run_pure ~regs:[| 5 |] (cas 0 ~expect:5 ~desired:9) in
  Util.check_bool "cas hits" true ok;
  let ok, _ = run_pure ~regs:[| 5 |] (cas 0 ~expect:4 ~desired:9) in
  Util.check_bool "cas misses" false ok;
  (* await with a true guard passes through and returns the value *)
  let v, _ = run_pure ~regs:[| 7 |] (await 0 (fun x -> x = 7)) in
  Util.check_int "await passes" 7 v;
  (* run_pure cannot block: a false guard is a programming error there *)
  Util.check_bool "await blocks run_pure" true
    (match run_pure ~regs:[| 7 |] (await 0 (fun x -> x = 8)) with
     | _ -> false
     | exception Invalid_argument _ -> true)

(* A blocked Await with nobody left to wake it surfaces as a maximal
   configuration, so a leaf check can flag the deadlock. *)
let await_deadlock_is_a_leaf () =
  let supplier ~pid ~call:_ =
    let open Shm.Prog.Syntax in
    if pid = 0 then
      let* v = Shm.Prog.await 0 (fun x -> x = 1) in
      Shm.Prog.return v
    else
      let* () = Shm.Prog.write 0 2 in
      Shm.Prog.return 0
  in
  let cfg = Shm.Sim.create ~n:2 ~num_regs:1 ~init:0 in
  match
    Shm.Explore.explore ~supplier ~calls_per_proc:[| 1; 1 |]
      ~leaf_check:(fun cfg -> Shm.Sim.running cfg = [])
      cfg
  with
  | Shm.Explore.Counterexample { cfg; at_leaf; _ } ->
    Util.check_bool "flagged at a leaf" true at_leaf;
    Util.check_bool "the awaiting process is stuck" true
      (Shm.Sim.running cfg <> [])
  | Shm.Explore.Ok _ ->
    Alcotest.fail "deadlocked configurations never reached a leaf check"

let suite =
  ( "svc-model",
    [ Util.case "clean models verify exhaustively (n=2)" clean_models_verify;
      Util.case "engines agree on verdicts (steal/split/capped)"
        engines_agree_on_verdicts;
      Util.case "planted mutants die with shrunk schedules" mutant_kills;
      Util.case "model repro corpus replays as regressions"
        model_corpus_replays;
      Util.case "replay: a stopped-early prefix is not a deadlock"
        replay_prefix_is_not_deadlock;
      mpsc_matches_real_mpsc;
      Util.case "rmw/await/cas semantics" rmw_await_semantics;
      Util.case "a blocked await surfaces as a leaf" await_deadlock_is_a_leaf ] )
