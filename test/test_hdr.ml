(* Obs.Hdr: bucket geometry, percentile accuracy against exact sorted
   oracles, lossless cross-domain merge, and the zero-allocation record
   path the live-telemetry overhead budget rests on. *)

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

let bucket_geometry () =
  (* indices are monotone, bucket bounds tile the range, and every value
     lands inside its own bucket *)
  let check v =
    let i = Obs.Hdr.bucket_index v in
    Util.check_bool
      (Printf.sprintf "v=%d inside bucket %d [%d,%d]" v i
         (Obs.Hdr.bucket_low i) (Obs.Hdr.bucket_high i))
      true
      (Obs.Hdr.bucket_low i <= v && v <= Obs.Hdr.bucket_high i);
    if v > 0 then
      Util.check_bool
        (Printf.sprintf "index monotone at %d" v)
        true
        (Obs.Hdr.bucket_index (v - 1) <= i)
  in
  for v = 0 to 4096 do check v done;
  List.iter check
    [ 65_535; 65_536; 1_000_000; 123_456_789; (1 lsl 40) + 17; 1 lsl 59 ];
  (* relative bucket width is <= 1/32 above the linear range *)
  for i = 32 to Obs.Hdr.num_buckets - 1 do
    let w = Obs.Hdr.bucket_high i - Obs.Hdr.bucket_low i + 1 in
    Util.check_bool "bucket width <= low/32 + 1" true
      (w <= (Obs.Hdr.bucket_low i / 32) + 1)
  done

let record_and_bounds () =
  let h = Obs.Hdr.create ~shards:1 () in
  List.iter (Obs.Hdr.record h) [ 5; 100; 100; 7_000; 123 ];
  let s = Obs.Hdr.snapshot h in
  Util.check_int "count" 5 (Obs.Hdr.count s);
  Util.check_int "min exact" 5 (Obs.Hdr.min_value s);
  Util.check_int "max exact" 7_000 (Obs.Hdr.max_value s);
  check_float "p0 = recorded min" 5. (Obs.Hdr.percentile s 0.);
  check_float "p100 = recorded max" 7_000. (Obs.Hdr.percentile s 100.);
  (* negatives clamp to 0, huge values clamp but stay counted *)
  Obs.Hdr.record h (-3);
  Obs.Hdr.record h max_int;
  let s = Obs.Hdr.snapshot h in
  Util.check_int "count after clamps" 7 (Obs.Hdr.count s);
  Util.check_int "clamped min" 0 (Obs.Hdr.min_value s)

let empty_snapshot () =
  let s = Obs.Hdr.snapshot (Obs.Hdr.create ()) in
  Util.check_int "empty count" 0 (Obs.Hdr.count s);
  Util.check_bool "empty percentile is nan" true
    (Float.is_nan (Obs.Hdr.percentile s 50.));
  Util.check_bool "empty mean is nan" true (Float.is_nan (Obs.Hdr.mean s))

(* Percentiles against the exact sorted-sample oracle: within one bucket
   width (<= 1/32 relative above the linear range, exact below it). *)
let percentile_oracle =
  Util.qtest ~count:60 "hdr percentile vs sorted oracle"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 2_000_000))
    (fun vals ->
       let h = Obs.Hdr.create ~shards:1 () in
       List.iter (Obs.Hdr.record h) vals;
       let s = Obs.Hdr.snapshot h in
       let sorted = Array.of_list (List.sort compare vals) in
       let n = Array.length sorted in
       let exact p =
         let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
         sorted.(max 0 (min (n - 1) (rank - 1)))
       in
       List.for_all
         (fun p ->
            let est = Obs.Hdr.percentile s p in
            let ex = exact p in
            (* the estimate must land in (or adjacent to) the exact
               value's bucket: within one bucket width of it *)
            let i = Obs.Hdr.bucket_index ex in
            let w = Obs.Hdr.bucket_high i - Obs.Hdr.bucket_low i + 1 in
            abs_float (est -. float_of_int ex) <= float_of_int w)
         [ 1.; 25.; 50.; 90.; 99.; 99.9 ]
       && Obs.Hdr.percentile s 0. = float_of_int sorted.(0)
       && Obs.Hdr.percentile s 100. = float_of_int sorted.(n - 1))

(* Concurrent recorders on N domains; the merged snapshot must agree
   bucket-for-bucket with a single-domain oracle fed the same multiset —
   the merge is lossless, not approximate. *)
let cross_domain_merge () =
  let num_domains = 4 and per_domain = 5_000 in
  let h = Obs.Hdr.create ~shards:8 () in
  let values i =
    (* deterministic per-domain stream with a wide dynamic range *)
    List.init per_domain (fun k ->
        let x = (k * 2654435761) + (i * 40503) in
        (x land 0xfffff) lsr (k land 15))
  in
  let domains =
    List.init num_domains (fun i ->
        Domain.spawn (fun () -> List.iter (Obs.Hdr.record h) (values i)))
  in
  List.iter Domain.join domains;
  let oracle = Obs.Hdr.create ~shards:1 () in
  for i = 0 to num_domains - 1 do
    List.iter (Obs.Hdr.record oracle) (values i)
  done;
  let s = Obs.Hdr.snapshot h and o = Obs.Hdr.snapshot oracle in
  Util.check_int "merged count" (Obs.Hdr.count o) (Obs.Hdr.count s);
  Util.check_int "merged min" (Obs.Hdr.min_value o) (Obs.Hdr.min_value s);
  Util.check_int "merged max" (Obs.Hdr.max_value o) (Obs.Hdr.max_value s);
  Alcotest.(check (float 1e-6))
    "merged sum" (Obs.Hdr.sum_approx o) (Obs.Hdr.sum_approx s);
  for i = 0 to Obs.Hdr.num_buckets - 1 do
    if Obs.Hdr.bucket_count o i <> Obs.Hdr.bucket_count s i then
      Alcotest.failf "bucket %d: oracle %d, merged %d" i
        (Obs.Hdr.bucket_count o i) (Obs.Hdr.bucket_count s i)
  done;
  List.iter
    (fun p ->
       Alcotest.(check (float 1e-9))
         (Printf.sprintf "merged p%.1f" p)
         (Obs.Hdr.percentile o p) (Obs.Hdr.percentile s p))
    [ 0.; 50.; 90.; 99.; 99.9; 100. ]

(* snapshot-level merge is the same sum *)
let snapshot_merge () =
  let a = Obs.Hdr.create ~shards:1 () and b = Obs.Hdr.create ~shards:1 () in
  List.iter (Obs.Hdr.record a) [ 1; 10; 100 ];
  List.iter (Obs.Hdr.record b) [ 2; 20; 200_000 ];
  let m = Obs.Hdr.merge (Obs.Hdr.snapshot a) (Obs.Hdr.snapshot b) in
  Util.check_int "merged count" 6 (Obs.Hdr.count m);
  Util.check_int "merged min" 1 (Obs.Hdr.min_value m);
  Util.check_int "merged max" 200_000 (Obs.Hdr.max_value m);
  let e = Obs.Hdr.snapshot (Obs.Hdr.create ()) in
  Util.check_int "merge with empty keeps count" 6
    (Obs.Hdr.count (Obs.Hdr.merge m e));
  Util.check_int "merge with empty keeps min" 1
    (Obs.Hdr.min_value (Obs.Hdr.merge e m))

(* The record path must not allocate: one padded fetch-and-add plus a
   read-mostly min/max refresh.  Same discipline (and same pin) as the
   service's submit/await path. *)
let record_no_alloc () =
  let h = Obs.Hdr.create () in
  (* warm up: min/max CAS settle, every bucket we will hit exists *)
  for i = 0 to 999 do Obs.Hdr.record h (i * 37) done;
  let before = Gc.minor_words () in
  for i = 0 to 999 do Obs.Hdr.record h ((i * 37) land 0xffff) done;
  let allocated = Gc.minor_words () -. before in
  if allocated >= 64. then
    Alcotest.failf "record path allocated %.0f minor words" allocated

let suite =
  ( "hdr",
    [ Util.case "bucket geometry" bucket_geometry;
      Util.case "record, bounds and clamps" record_and_bounds;
      Util.case "empty snapshot" empty_snapshot;
      percentile_oracle;
      Util.case "cross-domain merge equals single-domain oracle"
        cross_domain_merge;
      Util.case "snapshot merge" snapshot_merge;
      Util.case "record path allocates nothing" record_no_alloc ] )
