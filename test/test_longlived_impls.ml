(* Tests specific to the long-lived implementations: Lamport (n registers),
   EFR reconstruction (n-1 registers), vector timestamps (n registers). *)

module L = Timestamp.Lamport
module E = Timestamp.Efr
module V = Timestamp.Vector_ts

let lamport_registers () =
  List.iter (fun n -> Util.check_int "n regs" n (L.num_registers ~n)) [ 1; 5; 9 ]

let efr_registers () =
  List.iter
    (fun n -> Util.check_int "n-1 regs" (n - 1) (E.num_registers ~n))
    [ 1; 5; 9 ]

let lamport_sequential_counts () =
  let module H = Timestamp.Harness.Make (L) in
  let _, ts = H.run_sequential ~n:5 in
  Alcotest.(check (list int)) "1..5" [ 1; 2; 3; 4; 5 ] ts

let lamport_long_lived_monotone () =
  (* seeded fuzz schedules instead of an ad-hoc random workload: the same
     [Fuzz.Gen] generator the differential harness uses drives Lamport
     through interleaved, partially-completed calls *)
  List.iter
    (fun n ->
       List.iter
         (fun seed ->
            let cfg = Fuzz.Gen.default ~calls:4 ~n () in
            let actions =
              Fuzz.Gen.schedule cfg (Random.State.make [| seed |])
            in
            let sim, _ = Fuzz.Replay.run (module L) ~n actions in
            let per_proc = Hashtbl.create 8 in
            List.iter
              (fun ((op : Shm.History.op), t) ->
                 let l =
                   Option.value (Hashtbl.find_opt per_proc op.pid) ~default:[]
                 in
                 Hashtbl.replace per_proc op.pid ((op.call, t) :: l))
              (Shm.Sim.results sim);
            Hashtbl.iter
              (fun pid l ->
                 let sorted = List.sort compare l in
                 let rec incr = function
                   | (_, a) :: ((_, b) :: _ as rest) -> a < b && incr rest
                   | _ -> true
                 in
                 Util.check_bool
                   (Printf.sprintf "n=%d seed=%d p%d increasing" n seed pid)
                   true (incr sorted))
              per_proc)
         Util.seeds)
    [ 1; 4; 10 ]

(* EFR: process n-1 never writes. *)
let efr_reader_never_writes =
  Util.qtest ~count:40 "efr: the registerless process never writes"
    QCheck2.Gen.(pair (int_range 2 10) (int_bound 100_000))
    (fun (n, seed) ->
       let cfg =
         Shm.Sim.create ~n ~num_regs:(E.num_registers ~n)
           ~init:(E.init_value ~n)
       in
       let sup ~pid ~call = E.program ~n ~pid ~call in
       let rand = Random.State.make [| seed |] in
       match
         Shm.Schedule.run_workload ~fuel:500_000 ~rand
           ~calls_per_proc:(Array.make n 3) sup cfg
       with
       | None -> false
       | Some cfg ->
         (* count write steps by driving a fresh solo run of the reader *)
         let fresh =
           Shm.Sim.invoke cfg ~pid:(n - 1) ~program:(fun ~call ->
               sup ~pid:(n - 1) ~call)
         in
         let before = Shm.Sim.writes fresh in
         let fresh = Option.get (Shm.Sim.run_solo ~fuel:10_000 fresh (n - 1)) in
         Shm.Sim.writes fresh = before)

(* EFR's universe is not nowhere dense: between Even m and Even (m+1) lie
   infinitely many Odd (m, c) — sample a few. *)
let efr_universe_dense () =
  let between a b t = E.compare_ts a t && E.compare_ts t b in
  List.iter
    (fun c ->
       Util.check_bool
         (Printf.sprintf "E2 < O2.%d < E3" c)
         true
         (between (E.Even 2) (E.Even 3) (E.Odd (2, c))))
    [ 0; 1; 5; 1000 ];
  (* heights interleave correctly with the writers' Even timestamps *)
  Util.check_bool "O2.c < E3 only" false (E.compare_ts (E.Even 3) (E.Odd (2, 99)))

let efr_reader_timestamps_ordered () =
  (* two sequential calls by the reader get increasing timestamps even
     without any writes happening in between *)
  let n = 3 in
  let module H = Timestamp.Harness.Make (E) in
  let cfg = H.create ~n in
  let sup ~pid ~call = E.program ~n ~pid ~call in
  let solo cfg pid =
    let cfg = Shm.Sim.invoke cfg ~pid ~program:(fun ~call -> sup ~pid ~call) in
    Option.get (Shm.Sim.run_solo ~fuel:1000 cfg pid)
  in
  let cfg = solo cfg 2 in
  let cfg = solo cfg 2 in
  let t0 = Option.get (Shm.Sim.result cfg { pid = 2; call = 0 }) in
  let t1 = Option.get (Shm.Sim.result cfg { pid = 2; call = 1 }) in
  Util.check_bool "t0 < t1" true (E.compare_ts t0 t1);
  Util.check_bool "not t1 < t0" false (E.compare_ts t1 t0)

let efr_one_process_zero_registers () =
  Util.check_int "n=1 uses no registers" 0 (E.num_registers ~n:1);
  let module H = Timestamp.Harness.Make (E) in
  let cfg = H.run_random ~n:1 ~seed:5 () in
  ignore (H.check_exn cfg)

(* Vector timestamps: comparisons characterize happens-before exactly on
   sequential executions and never order concurrent calls both ways. *)
let vector_compare_antisymmetric () =
  List.iter
    (fun n ->
       List.iter
         (fun seed ->
            let cfg = Fuzz.Gen.default ~calls:3 ~n () in
            let actions =
              Fuzz.Gen.schedule cfg (Random.State.make [| seed |])
            in
            let sim, _ = Fuzz.Replay.run (module V) ~n actions in
            let ts = List.map snd (Shm.Sim.results sim) in
            List.iter
              (fun a ->
                 List.iter
                   (fun b ->
                      Util.check_bool
                        (Printf.sprintf "n=%d seed=%d not both ways" n seed)
                        false
                        (V.compare_ts a b && V.compare_ts b a))
                   ts)
              ts)
         Util.seeds)
    [ 1; 3; 8 ]

let vector_reflects_own_calls () =
  let module H = Timestamp.Harness.Make (V) in
  let _, ts = H.run_sequential ~n:3 in
  match ts with
  | [ a; b; c ] ->
    Alcotest.(check (list int)) "first" [ 1; 0; 0 ] (Array.to_list a);
    Alcotest.(check (list int)) "second" [ 1; 1; 0 ] (Array.to_list b);
    Alcotest.(check (list int)) "third" [ 1; 1; 1 ] (Array.to_list c)
  | _ -> Alcotest.fail "expected three timestamps"

let suite =
  ( "long-lived-impls",
    [ Util.case "lamport register count" lamport_registers;
      Util.case "efr register count" efr_registers;
      Util.case "lamport sequential" lamport_sequential_counts;
      Util.case "lamport: per-process timestamps increase"
        lamport_long_lived_monotone;
      efr_reader_never_writes;
      Util.case "efr universe is dense between evens" efr_universe_dense;
      Util.case "efr reader calls ordered" efr_reader_timestamps_ordered;
      Util.case "efr n=1 zero registers" efr_one_process_zero_registers;
      Util.case "vector: compare never holds both ways"
        vector_compare_antisymmetric;
      Util.case "vector components reflect calls" vector_reflects_own_calls ] )
