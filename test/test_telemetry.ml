(* Obs.Timeseries: the sampler domain writes a valid schema-versioned
   JSONL stream, the stall detector fires exactly when progress stops
   while work is queued, the validator rejects malformed streams, and a
   telemetry-armed service/loadgen run produces a file the validator
   accepts end to end. *)

let read_docs path =
  match Obs.Json.of_lines (In_channel.with_open_text path In_channel.input_all)
  with
  | Ok docs -> docs
  | Error e -> Alcotest.failf "%s: parse error: %s" path e

let with_temp f =
  let path = Filename.temp_file "ts_telemetry" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let validate_ok docs =
  match Obs.Timeseries.validate docs with
  | Ok v -> v
  | Error e -> Alcotest.failf "validate: %s" e

let sampler_writes_valid_file () =
  with_temp @@ fun path ->
  let ts = Obs.Timeseries.create ~interval_us:1_000 () in
  let n = Atomic.make 0 in
  Obs.Timeseries.add_source ts ~name:"counter" (fun () ->
      float_of_int (Atomic.fetch_and_add n 1));
  (* nan serializes as null and must still validate *)
  Obs.Timeseries.add_source ts ~name:"sometimes" (fun () ->
      if Atomic.get n < 2 then Float.nan else 1.5);
  Obs.Timeseries.add_meta ts "who" (Obs.Json.String "test");
  Obs.Timeseries.start ~out:path ts;
  Unix.sleepf 0.02;
  Obs.Timeseries.stop ts;
  let docs = read_docs path in
  Util.check_bool "looks_like telemetry" true (Obs.Timeseries.looks_like docs);
  let v = validate_ok docs in
  Util.check_int "two series" 2 v.v_series;
  Util.check_int "validator samples = reported samples"
    (Obs.Timeseries.samples ts) v.v_samples;
  Util.check_bool "sampled at least twice" true (v.v_samples >= 2);
  Util.check_int "no stalls" 0 v.v_stalls;
  (* header carries the meta and the interval *)
  match docs with
  | header :: _ ->
    Util.check_bool "meta preserved" true
      (Obs.Json.member "meta" header
       |> Option.map (Obs.Json.member "who")
       = Some (Some (Obs.Json.String "test")))
  | [] -> Alcotest.fail "empty file"

let stall_fires () =
  with_temp @@ fun path ->
  let ts = Obs.Timeseries.create ~interval_us:1_000 () in
  Obs.Timeseries.add_source ts ~name:"depth" (fun () -> 3.);
  (* progress never moves while depth stays positive: a stall *)
  Obs.Timeseries.add_stall_rule ~after:1 ts ~name:"s0"
    ~depth:(fun () -> 3.)
    ~progress:(fun () -> 7.);
  Obs.Timeseries.start ~out:path ts;
  Unix.sleepf 0.02;
  Obs.Timeseries.stop ts;
  let v = validate_ok (read_docs path) in
  Util.check_bool "stall detected" true (Obs.Timeseries.stalls ts > 0);
  Util.check_int "validator agrees on stall count"
    (Obs.Timeseries.stalls ts) v.v_stalls;
  Util.check_bool "stall events in stream" true (v.v_events > 0)

let no_stall_when_progressing () =
  with_temp @@ fun path ->
  let ts = Obs.Timeseries.create ~interval_us:1_000 () in
  let served = Atomic.make 0 in
  Obs.Timeseries.add_source ts ~name:"depth" (fun () -> 5.);
  Obs.Timeseries.add_stall_rule ~after:1 ts ~name:"s0"
    ~depth:(fun () -> 5.)
    ~progress:(fun () -> float_of_int (Atomic.fetch_and_add served 1));
  Obs.Timeseries.start ~out:path ts;
  Unix.sleepf 0.02;
  Obs.Timeseries.stop ts;
  Util.check_int "no stall while progress moves" 0 (Obs.Timeseries.stalls ts);
  Util.check_int "no events" 0 (validate_ok (read_docs path)).v_events

let no_stall_when_idle () =
  with_temp @@ fun path ->
  let ts = Obs.Timeseries.create ~interval_us:1_000 () in
  Obs.Timeseries.add_source ts ~name:"depth" (fun () -> 0.);
  (* flat progress is fine when the queue is empty *)
  Obs.Timeseries.add_stall_rule ~after:1 ts ~name:"s0"
    ~depth:(fun () -> 0.)
    ~progress:(fun () -> 7.);
  Obs.Timeseries.start ~out:path ts;
  Unix.sleepf 0.02;
  Obs.Timeseries.stop ts;
  Util.check_int "idle queue never stalls" 0 (Obs.Timeseries.stalls ts)

let validator_rejects () =
  let open Obs.Json in
  let header =
    Obj
      [ ("schema_version", Int Obs.Timeseries.schema_version);
        ("kind", String "header");
        ("interval_us", Int 1000);
        ("series", List [ String "a"; String "b" ]);
        ("meta", Obj []) ]
  in
  let sample t vs =
    Obj
      [ ("kind", String "sample"); ("t_us", Float t);
        ("v", List (List.map (fun v -> Float v) vs)) ]
  in
  let end_marker s st =
    Obj [ ("kind", String "end"); ("samples", Int s); ("stalls", Int st) ]
  in
  let rejects name docs =
    match Obs.Timeseries.validate docs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  rejects "empty stream" [];
  rejects "missing header" [ sample 1. [ 1.; 2. ] ];
  rejects "wrong schema version"
    [ Obj
        [ ("schema_version", Int 999); ("kind", String "header");
          ("series", List []) ] ];
  rejects "sample width mismatch" [ header; sample 1. [ 1. ] ];
  rejects "non-numeric sample value"
    [ header;
      Obj
        [ ("kind", String "sample"); ("t_us", Float 1.);
          ("v", List [ String "x"; Float 2. ]) ] ];
  rejects "time goes backwards"
    [ header; sample 5. [ 1.; 2. ]; sample 4. [ 1.; 2. ] ];
  rejects "document after end marker"
    [ header; sample 1. [ 1.; 2. ]; end_marker 1 0; sample 2. [ 1.; 2. ] ];
  rejects "end marker sample count wrong"
    [ header; sample 1. [ 1.; 2. ]; end_marker 7 0 ];
  rejects "unknown kind" [ header; Obj [ ("kind", String "banana") ] ];
  (* and the happy path still passes *)
  let v =
    validate_ok
      [ header; sample 1. [ 1.; 2. ]; sample 2. [ 3.; 4. ]; end_marker 2 0 ]
  in
  Util.check_int "happy path samples" 2 v.v_samples

let loadgen_end_to_end () =
  with_temp @@ fun path ->
  let open Svc.Loadgen in
  let r =
    run Timestamp.Registry.efr
      { default with
        mode = Service { shards = 2; batch_max = 16 };
        arrival = Open { rate = 4000. };
        clients = 2;
        requests_per_client = 60;
        pipeline = 4;
        n = 2;
        telemetry =
          Some { tel_out = path; tel_append = false; tel_interval_us = 2_000 }
      }
  in
  Util.check_int "all requests completed" 120 r.lg_total;
  Util.check_bool "checker holds" true (r.lg_violation = None);
  Util.check_bool "percentiles ordered" true
    (r.lg_p50_us <= r.lg_p99_us
     && r.lg_p99_us <= r.lg_p999_us
     && r.lg_p999_us <= r.lg_max_us);
  let docs = read_docs path in
  Util.check_bool "telemetry file looks like telemetry" true
    (Obs.Timeseries.looks_like docs);
  let v = validate_ok docs in
  Util.check_int "report samples = file samples" r.lg_samples v.v_samples;
  Util.check_bool "sampled at least once" true (v.v_samples >= 1);
  (* the service contributed its per-shard series and the generator its
     latency series *)
  match docs with
  | header :: _ ->
    let series =
      match Obs.Json.member "series" header with
      | Some (Obs.Json.List l) ->
        List.filter_map
          (function Obs.Json.String s -> Some s | _ -> None)
          l
      | _ -> []
    in
    List.iter
      (fun s ->
         Util.check_bool (Printf.sprintf "series %s present" s) true
           (List.mem s series))
      [ "s0.depth"; "s1.served"; "s0.batch_p50"; "svc.pool";
        "lat.p50_us"; "lat.p99_us"; "lat.p999_us"; "lg.completed" ]
  | [] -> Alcotest.fail "empty telemetry file"

let misuse () =
  let ts = Obs.Timeseries.create () in
  Util.check_bool "interval must be positive" true
    (match Obs.Timeseries.create ~interval_us:0 () with
     | _ -> false
     | exception Invalid_argument _ -> true);
  Util.check_bool "after must be positive" true
    (match
       Obs.Timeseries.add_stall_rule ~after:0 ts ~name:"x"
         ~depth:(fun () -> 0.)
         ~progress:(fun () -> 0.)
     with
     | () -> false
     | exception Invalid_argument _ -> true);
  with_temp @@ fun path ->
  Obs.Timeseries.start ~out:path ts;
  Util.check_bool "add_source after start rejected" true
    (match Obs.Timeseries.add_source ts ~name:"late" (fun () -> 0.) with
     | () -> false
     | exception Invalid_argument _ -> true);
  Obs.Timeseries.stop ts;
  (* stop is idempotent *)
  Obs.Timeseries.stop ts

let suite =
  ( "telemetry",
    [ Util.case "sampler writes a valid stream" sampler_writes_valid_file;
      Util.case "stall detector fires" stall_fires;
      Util.case "no stall while progressing" no_stall_when_progressing;
      Util.case "no stall when idle" no_stall_when_idle;
      Util.case "validator rejects malformed streams" validator_rejects;
      Util.slow_case "telemetry-armed loadgen end to end" loadgen_end_to_end;
      Util.case "misuse is rejected" misuse ] )
