let () =
  Alcotest.run "timestamp-space"
    [ Test_prog.suite;
      Test_history.suite;
      Test_sim.suite;
      Test_schedule.suite;
      Test_snapshot.suite;
      Test_timestamp.suite;
      Test_simple_oneshot.suite;
      Test_sqrt.suite;
      Test_longlived_impls.suite;
      Test_checker.suite;
      Test_covering.suite;
      Test_adversary.suite;
      Test_ablation.suite;
      Test_explore.suite;
      Test_explore_v2.suite;
      Test_explore_v3.suite;
      Test_bounded.suite;
      Test_swap.suite;
      Test_k_exclusion.suite;
      Test_misc.suite;
      Test_renaming_tob.suite;
      Test_abd.suite;
      Test_api.suite;
      Test_mp_clocks.suite;
      Test_apps.suite;
      Test_multicore.suite;
      Test_backend.suite;
      Test_obs.suite;
      Test_hdr.suite;
      Test_telemetry.suite;
      Test_svc.suite;
      Test_net.suite;
      Test_fuzz.suite;
      Test_model.suite ]
