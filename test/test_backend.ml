(* Register-backend equivalence: the boxed and padded-flat backends must
   be observationally identical, and the pooled service hot path must not
   allocate. *)

module B = Multicore.Backend

(* ------------------------------------------------------------------ *)
(* Flat backend unit behavior: immediates, interned values, growth.     *)

let flat_roundtrip () =
  let f = B.Flat.make ~num:4 ~init:0 in
  Util.check_int "length" 4 (B.Flat.length f);
  Util.check_int "init" 0 (B.Flat.get f 0);
  B.Flat.set f 1 42;
  Util.check_int "set/get" 42 (B.Flat.get f 1);
  B.Flat.set f 2 (-17);
  Util.check_int "negative" (-17) (B.Flat.get f 2);
  Util.check_int "exchange returns old" 42 (B.Flat.exchange f 1 7);
  Util.check_int "exchange wrote" 7 (B.Flat.get f 1);
  Util.check_int "no interning for ints" 0 (B.Flat.interned f)

let flat_interning () =
  (* boxed payloads round-trip through the intern table *)
  let f = B.Flat.make ~num:2 ~init:[ 0 ] in
  B.Flat.set f 0 [ 1; 2; 3 ];
  Util.check_bool "interned value round-trips" true
    (B.Flat.get f 0 = [ 1; 2; 3 ]);
  Util.check_bool "init round-trips" true (B.Flat.get f 1 = [ 0 ]);
  (* same structural value interns once *)
  B.Flat.set f 1 [ 1; 2; 3 ];
  Util.check_int "structural sharing" 2 (B.Flat.interned f);
  (* push the table past its initial 64-slot capacity *)
  for i = 0 to 199 do
    B.Flat.set f 0 [ i; i + 1 ]
  done;
  Util.check_bool "growth preserves lookup" true (B.Flat.get f 0 = [ 199; 200 ]);
  Util.check_bool "distinct values all interned" true (B.Flat.interned f > 64)

let flat_mixed_payloads () =
  (* a type whose values straddle the immediate/boxed split, as [Sqrt]'s
     [Bot | Cell _] does *)
  let f = B.Flat.make ~num:1 ~init:None in
  Util.check_bool "immediate constructor" true (B.Flat.get f 0 = None);
  B.Flat.set f 0 (Some 5);
  Util.check_bool "boxed constructor" true (B.Flat.get f 0 = Some 5);
  Util.check_bool "swap back to immediate" true
    (B.Flat.exchange f 0 None = Some 5);
  Util.check_bool "final" true (B.Flat.get f 0 = None)

(* ------------------------------------------------------------------ *)
(* Sequential differential: same results, same op counts, per impl.     *)

let store_differential () =
  let n = 6 in
  Util.over_impls @@ fun (Timestamp.Registry.Impl (module T)) ->
  let make backend =
    Multicore.Exec.make_store ~backend ~num:(T.num_registers ~n)
      ~init:(T.init_value ~n)
  in
  let boxed = make `Boxed and flat = make `Flat in
  for pid = 0 to n - 1 do
    let p () = T.program ~n ~pid ~call:0 in
    let ts_b, ops_b = Multicore.Exec.run_store_counting ~regs:boxed (p ()) in
    let ts_f, ops_f = Multicore.Exec.run_store_counting ~regs:flat (p ()) in
    Util.check_bool (T.name ^ ": same timestamp") true (T.equal_ts ts_b ts_f);
    Util.check_int (T.name ^ ": same op count") ops_b ops_f
  done

let functor_matches_store () =
  (* the generic functor path agrees with the specialized store path *)
  let module FB = Multicore.Exec.Make (B.Boxed) in
  let module FF = Multicore.Exec.Make ((B.Flat : B.REGISTER_BACKEND)) in
  let n = 5 in
  Util.over_impls @@ fun (Timestamp.Registry.Impl (module T)) ->
  let num = T.num_registers ~n and init = T.init_value ~n in
  let rb = FB.make_regs ~num ~init and rf = FF.make_regs ~num ~init in
  for pid = 0 to n - 1 do
    let ts_b = FB.run ~regs:rb (T.program ~n ~pid ~call:0) in
    let ts_f = FF.run ~regs:rf (T.program ~n ~pid ~call:0) in
    Util.check_bool (T.name ^ ": functor backends agree") true
      (T.equal_ts ts_b ts_f)
  done

(* ------------------------------------------------------------------ *)
(* Concurrent differential under Multicore.Stress: identical verdicts   *)
(* (and record counts) on both backends for the four registered         *)
(* implementations E13/E15 benchmark.                                   *)

let stress_both_backends impl_name (module T : Timestamp.Intf.S) ~n ~calls () =
  let module S = Multicore.Stress.Make (T) in
  List.iter
    (fun backend ->
       let records = S.run ~backend ~n ~calls () in
       let expected_calls =
         match T.kind with `One_shot -> 1 | `Long_lived -> calls
       in
       Util.check_int
         (impl_name ^ "/" ^ B.choice_tag backend ^ ": op records")
         (n * expected_calls) (List.length records);
       match S.check records with
       | Ok _ -> ()
       | Error e ->
         Alcotest.fail
           (impl_name ^ "/" ^ B.choice_tag backend ^ ": " ^ e))
    B.all_choices

(* ------------------------------------------------------------------ *)
(* Zero-alloc pin: the pooled submit/complete client path.              *)

let service_zero_alloc () =
  let module S = Svc.Service.Make (Timestamp.Lamport) in
  let svc = S.start ~shards:1 ~n:2 () in
  let session = S.open_session svc in
  (* warm up: fill the session pool and reach steady state *)
  for _ = 1 to 200 do
    ignore (S.await_ts session (S.submit session))
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 200 do
    ignore (S.await_ts session (S.submit session))
  done;
  let w1 = Gc.minor_words () in
  S.stop svc;
  let delta = w1 -. w0 in
  (* [Gc.minor_words] itself boxes its float results; anything beyond a
     few words means a per-request allocation crept back in. *)
  Util.check_bool
    (Printf.sprintf "steady-state submit/await_ts allocated %.0f minor words"
       delta)
    true (delta < 64.)

let service_flat_end_to_end () =
  (* the service over the flat backend, including an interning value type
     (sqrt's [Bot | Cell _]), still satisfies the checker *)
  List.iter
    (fun impl ->
       let r =
         Svc.Loadgen.run impl
           { Svc.Loadgen.default with
             mode = Svc.Loadgen.Service { shards = 2; batch_max = 8 };
             clients = 3;
             requests_per_client = 40;
             pipeline = 4;
             backend = `Flat }
       in
       Util.check_bool (r.Svc.Loadgen.lg_impl ^ ": no violation (flat)") true
         (r.Svc.Loadgen.lg_violation = None);
       Util.check_int (r.Svc.Loadgen.lg_impl ^ ": total") 120
         r.Svc.Loadgen.lg_total)
    [ Timestamp.Registry.lamport; Timestamp.Registry.sqrt_oneshot ]

let suite =
  ( "backend",
    [ Util.case "flat backend round-trips immediates" flat_roundtrip;
      Util.case "flat backend interns boxed payloads" flat_interning;
      Util.case "flat backend handles mixed payloads" flat_mixed_payloads;
      Util.case "boxed and flat agree sequentially (all impls)"
        store_differential;
      Util.case "functor interpreters agree (all impls)" functor_matches_store;
      Util.slow_case "stress lamport on both backends"
        (stress_both_backends "lamport" (module Timestamp.Lamport) ~n:4
           ~calls:60);
      Util.slow_case "stress efr on both backends"
        (stress_both_backends "efr" (module Timestamp.Efr) ~n:4 ~calls:60);
      Util.slow_case "stress vector on both backends"
        (stress_both_backends "vector" (module Timestamp.Vector_ts) ~n:4
           ~calls:40);
      Util.slow_case "stress sqrt one-shot on both backends"
        (stress_both_backends "sqrt" (module Timestamp.Sqrt.One_shot) ~n:8
           ~calls:1);
      Util.slow_case "pooled service path is allocation-free"
        service_zero_alloc;
      Util.slow_case "service over flat backend passes the checker"
        service_flat_end_to_end ] )
