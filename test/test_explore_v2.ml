(* The exploration engine v2 (state dedup + sleep-set independence
   reduction + domain parallelism) against the exhaustive v1 baseline
   ([~dedup:false ~reduction:false]): identical verdicts on correct
   implementations, identical (and replayable) counterexamples on broken
   ones, under every flag combination. *)

let flag_combos =
  (* dedup, reduction, domains *)
  [ ("dedup", true, false, 1);
    ("reduction", false, true, 1);
    ("dedup+reduction", true, true, 1);
    ("dedup+reduction+domains", true, true, 3) ]

let checker_leaf (type v r)
    (module T : Timestamp.Intf.S with type value = v and type result = r)
    (cfg : (v, r) Shm.Sim.t) =
  Result.is_ok (Timestamp.Checker.check_sim (module T) cfg)

let run_engine (type v r) ?invariant ~dedup ~reduction ~domains
    (module T : Timestamp.Intf.S with type value = v and type result = r) ~n
    ~calls =
  let supplier ~pid ~call = T.program ~n ~pid ~call in
  let cfg =
    Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
  in
  Shm.Explore.explore ~max_steps:400 ~dedup ~reduction ~domains ~supplier
    ~calls_per_proc:(Array.make n calls) ?invariant
    ~leaf_check:(checker_leaf (module T))
    cfg

(* Every flag combination agrees with the exhaustive baseline on the three
   implementations the paper's Sections 5 and 6 verify by exploration. *)
let verdicts_match_baseline () =
  let check (type v r) name
      (module T : Timestamp.Intf.S with type value = v and type result = r)
      ~n ~calls =
    let baseline =
      run_engine ~dedup:false ~reduction:false ~domains:1 (module T) ~n ~calls
    in
    (match baseline with
     | Shm.Explore.Ok stats ->
       Util.check_bool (name ^ ": baseline exhaustive") true stats.exhaustive
     | Shm.Explore.Counterexample _ ->
       Alcotest.failf "%s: baseline found an unexpected counterexample" name);
    List.iter
      (fun (label, dedup, reduction, domains) ->
         match
           baseline, run_engine ~dedup ~reduction ~domains (module T) ~n ~calls
         with
         | Shm.Explore.Ok b, Shm.Explore.Ok s ->
           Util.check_bool
             (Printf.sprintf "%s/%s: still exhaustive" name label)
             b.exhaustive s.exhaustive;
           Util.check_bool
             (Printf.sprintf "%s/%s: expanded no more than baseline" name
                label)
             true
             (s.expanded <= b.expanded)
         | _, Shm.Explore.Counterexample _ ->
           Alcotest.failf "%s/%s: engine disagrees with baseline" name label
         | Shm.Explore.Counterexample _, _ -> assert false)
      flag_combos
  in
  check "simple-oneshot n=2" (module Timestamp.Simple_oneshot) ~n:2 ~calls:1;
  check "simple-oneshot n=3" (module Timestamp.Simple_oneshot) ~n:3 ~calls:1;
  check "efr n=2" (module Timestamp.Efr) ~n:2 ~calls:2;
  check "efr n=3" (module Timestamp.Efr) ~n:3 ~calls:1;
  check "sqrt n=2" (module Timestamp.Sqrt.One_shot) ~n:2 ~calls:1

(* The dedup+reduction engine must beat the baseline by a wide margin on a
   workload of test_explore scale; this is the PR's performance contract
   (issue acceptance: >= 10x fewer expanded configurations). *)
let reduction_factor_at_least_10x () =
  match
    ( run_engine ~dedup:false ~reduction:false ~domains:1
        (module Timestamp.Simple_oneshot) ~n:3 ~calls:1,
      run_engine ~dedup:true ~reduction:true ~domains:1
        (module Timestamp.Simple_oneshot) ~n:3 ~calls:1 )
  with
  | Shm.Explore.Ok base, Shm.Explore.Ok fast ->
    Util.check_bool
      (Printf.sprintf "expanded %d -> %d is >= 10x" base.expanded
         fast.expanded)
      true
      (base.expanded >= 10 * fast.expanded);
    Util.check_bool "dedup or sleep pruning did fire" true
      (fast.dedup_hits > 0 && fast.sleep_skips > 0)
  | _ -> Alcotest.fail "unexpected counterexample"

(* A family of seeded fault injections into Simple_oneshot: seed mod 3 = 0
   keeps the object intact, otherwise one seed-chosen process returns a
   corrupted (too large) timestamp.  The property: all engines agree with
   the exhaustive baseline on the verdict and the at_leaf flag, whatever
   the seed does. *)
let injected (type v) ~seed
    (module T : Timestamp.Intf.S with type value = v and type result = int) :
  (module Timestamp.Intf.S with type value = v and type result = int) =
  (module struct
    include (val (module T
                   : Timestamp.Intf.S
                   with type value = v and type result = int))

    let name = Printf.sprintf "%s-injected-%d" T.name seed

    let program ~n ~pid ~call =
      let p = T.program ~n ~pid ~call in
      if seed mod 3 <> 0 && pid = seed mod n then
        Shm.Prog.map (fun ts -> ts + 1_000_000) p
      else p
  end)

let outcome_signature = function
  | Shm.Explore.Ok _ -> "ok"
  | Shm.Explore.Counterexample { at_leaf; _ } ->
    if at_leaf then "cex-leaf" else "cex-invariant"

let injected_bug_property =
  Util.qtest ~count:30 "engines agree on seeded fault injections"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
       let n = 3 in
       let m = injected ~seed (module Timestamp.Simple_oneshot) in
       let baseline =
         run_engine ~dedup:false ~reduction:false ~domains:1 m ~n
           ~calls:1
       in
       List.for_all
         (fun (_, dedup, reduction, domains) ->
            outcome_signature
              (run_engine ~dedup ~reduction ~domains m ~n ~calls:1)
            = outcome_signature baseline)
         flag_combos)

(* Regression: a deterministic injected bug is caught under every flag
   combination, the counterexample is found at a leaf, and the returned
   schedule replays to a configuration the checker rejects. *)
let injected_bug_caught_all_flags () =
  let n = 3 in
  let m = injected ~seed:1 (module Timestamp.Simple_oneshot) in
  let (module B) = m in
  let supplier ~pid ~call = B.program ~n ~pid ~call in
  let cfg0 =
    Shm.Sim.create ~n ~num_regs:(B.num_registers ~n) ~init:(B.init_value ~n)
  in
  List.iter
    (fun (label, dedup, reduction, domains) ->
       match run_engine ~dedup ~reduction ~domains m ~n ~calls:1 with
       | Shm.Explore.Ok _ ->
         Alcotest.failf "%s: injected bug not caught" label
       | Shm.Explore.Counterexample { schedule; at_leaf; _ } ->
         Util.check_bool (label ^ ": caught at a leaf") true at_leaf;
         let replayed = Shm.Schedule.apply supplier cfg0 schedule in
         Util.check_bool (label ^ ": replay violates the checker") false
           (checker_leaf m replayed))
    (("baseline", false, false, 1) :: flag_combos)

(* Invariant (non-leaf) counterexamples survive the engines too: same
   verdict, not at a leaf, replayable. *)
let invariant_cex_all_flags () =
  let n = 2 in
  let supplier ~pid ~call = Timestamp.Lamport.program ~n ~pid ~call in
  let cfg0 = Shm.Sim.create ~n ~num_regs:2 ~init:0 in
  let invariant cfg = Shm.Sim.reg cfg 0 = 0 (* fails after p0's write *) in
  List.iter
    (fun (label, dedup, reduction, domains) ->
       match
         Shm.Explore.explore ~dedup ~reduction ~domains ~supplier
           ~calls_per_proc:[| 1; 1 |] ~invariant cfg0
       with
       | Shm.Explore.Ok _ -> Alcotest.failf "%s: invariant cannot hold" label
       | Shm.Explore.Counterexample { schedule; at_leaf; _ } ->
         Util.check_bool (label ^ ": not at leaf") false at_leaf;
         Util.check_bool (label ^ ": replay violates") false
           (invariant (Shm.Schedule.apply supplier cfg0 schedule)))
    (("baseline", false, false, 1) :: flag_combos)

(* The parallel engine is deterministic: two runs return identical
   counterexample schedules (lowest-indexed root branch wins). *)
let parallel_deterministic () =
  let run () =
    match
      run_engine ~dedup:true ~reduction:true ~domains:3
        (injected ~seed:1 (module Timestamp.Simple_oneshot))
        ~n:3 ~calls:1
    with
    | Shm.Explore.Counterexample { schedule; _ } -> schedule
    | Shm.Explore.Ok _ -> Alcotest.fail "expected a counterexample"
  in
  Util.check_bool "same schedule across parallel runs" true (run () = run ())

let suite =
  ( "explore-v2",
    [ Util.slow_case "all flag combos match the exhaustive baseline"
        verdicts_match_baseline;
      Util.slow_case "dedup+reduction expands >= 10x fewer configurations"
        reduction_factor_at_least_10x;
      injected_bug_property;
      Util.case "injected bug caught under every flag combination"
        injected_bug_caught_all_flags;
      Util.case "invariant counterexamples under every flag combination"
        invariant_cex_all_flags;
      Util.case "parallel counterexample reporting is deterministic"
        parallel_deterministic ] )
