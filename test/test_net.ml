(* Network layer: frame codec round-trips and rejection, the TCP/Unix
   transport end to end against a live server, epoch-range lease
   soundness under concurrent clients, and graceful shutdown with
   connections still open. *)

open Svc.Client

let sock_path () =
  let p = Filename.temp_file "tsnet" ".sock" in
  (* Server.start unlinks an existing path before bind *)
  p

(* ------------------------- frame codec ---------------------------- *)

let gen_blob = QCheck2.Gen.(string_size (int_range 0 64))

let gen_req =
  QCheck2.Gen.(
    oneof
      [ return Net.Frame.Ping;
        return Net.Frame.Get_stamp;
        map (fun k -> Net.Frame.Get_range k) (int_range 1 Net.Frame.max_lease);
        map2 (fun a b -> Net.Frame.Compare { a; b }) gen_blob gen_blob;
        return Net.Frame.Stats;
        return Net.Frame.Stop ])

let gen_resp =
  let open QCheck2.Gen in
  let nat = int_range 0 1_000_000 in
  let gen_info =
    map2
      (fun (impl, backend) ((n, shards), codec) ->
         Net.Frame.Pong
           { si_impl = impl;
             si_kind = (if n land 1 = 0 then `One_shot else `Long_lived);
             si_n = n; si_shards = shards; si_backend = backend;
             si_codec = codec })
      (pair gen_blob gen_blob) (pair (pair nat nat) gen_blob)
  in
  let gen_stamp =
    map2
      (fun (pid, call) ((shard, (s, e)), ts) ->
         Net.Frame.Stamp
           { w_pid = pid; w_call = call; w_shard = shard; w_start_tick = s;
             w_end_tick = e; w_ts = ts })
      (pair nat nat)
      (pair (pair nat (pair nat nat)) gen_blob)
  in
  let gen_range =
    map2
      (fun ((pid, call), (shard, start)) ((base, count), ts) ->
         Net.Frame.Range
           { g_pid = pid; g_call = call; g_shard = shard;
             g_start_tick = start; g_base = base; g_count = count; g_ts = ts })
      (pair (pair nat nat) (pair nat nat))
      (pair (pair nat nat) gen_blob)
  in
  let gen_stats =
    map2
      (fun served reqs ->
         Net.Frame.Stats_reply
           { sr_shards =
               [ { Net.Frame.ss_served = served; ss_batches = served / 2;
                   ss_max_batch = 7 } ];
             sr_conns =
               [ { Net.Frame.cn_slot = 0; cn_conns = 2; cn_requests = reqs;
                   cn_stamps = reqs; cn_leases = 1; cn_bytes_in = 10 * reqs;
                   cn_bytes_out = 30 * reqs } ] })
      nat nat
  in
  oneof
    [ gen_info; gen_stamp; gen_range;
      map (fun v -> Net.Frame.Cmp v) bool;
      gen_stats;
      return Net.Frame.Stopping;
      map (fun m -> Net.Frame.Err m) gen_blob ]

let req_roundtrip =
  Util.qtest ~count:200 "frame: req round-trip (v2)" gen_req (fun r ->
      Net.Frame.decode_req (Net.Frame.encode_req r) = Ok (2, r))

let resp_roundtrip =
  Util.qtest ~count:200 "frame: resp round-trip (v2)" gen_resp (fun r ->
      Net.Frame.decode_resp (Net.Frame.encode_resp r) = Ok (2, r))

(* The v1 layout must stay decodable (old peers negotiate down to it).
   A v1 [Pong] cannot carry the codec name: it decodes as "marshal". *)
let req_roundtrip_v1 =
  Util.qtest ~count:200 "frame: req round-trip (v1)" gen_req (fun r ->
      Net.Frame.decode_req (Net.Frame.encode_req ~version:1 r) = Ok (1, r))

let resp_roundtrip_v1 =
  Util.qtest ~count:200 "frame: resp round-trip (v1)" gen_resp (fun r ->
      let expect =
        match r with
        | Net.Frame.Pong i -> Net.Frame.Pong { i with si_codec = "marshal" }
        | r -> r
      in
      Net.Frame.decode_resp (Net.Frame.encode_resp ~version:1 r)
      = Ok (1, expect))

let frame_rejects () =
  let is_err = function Result.Error _ -> true | Result.Ok _ -> false in
  (* every strict prefix of a valid payload is rejected *)
  let payload = Net.Frame.encode_req (Net.Frame.Get_range 1024) in
  for len = 0 to String.length payload - 1 do
    Util.check_bool
      (Printf.sprintf "truncated at %d rejected" len)
      true
      (is_err (Net.Frame.decode_req (String.sub payload 0 len)))
  done;
  (* wrong version byte *)
  let bad_version = "\007" ^ String.sub payload 1 (String.length payload - 1) in
  Util.check_bool "bad version rejected" true
    (Net.Frame.decode_req bad_version = Result.Error (Net.Frame.Bad_version 7));
  (* unknown opcode — on both decoders *)
  let bad_op = "\001\099" in
  Util.check_bool "bad opcode rejected (req)" true
    (Net.Frame.decode_req bad_op = Result.Error (Net.Frame.Bad_opcode 99));
  Util.check_bool "bad opcode rejected (resp)" true
    (Net.Frame.decode_resp bad_op = Result.Error (Net.Frame.Bad_opcode 99));
  (* a response opcode is not a request *)
  Util.check_bool "resp opcode rejected by req decoder" true
    (is_err (Net.Frame.decode_req (Net.Frame.encode_resp Net.Frame.Stopping)));
  (* trailing garbage after a well-formed body *)
  Util.check_bool "trailing bytes rejected" true
    (is_err (Net.Frame.decode_req (payload ^ "x")));
  (* length-prefix screening: oversized and nonsense lengths *)
  let prefix n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    b
  in
  (match
     Net.Frame.frame_length (prefix (Net.Frame.max_payload + 1)) ~off:0
       ~avail:4
   with
   | `Error (Net.Frame.Oversized _) -> ()
   | _ -> Alcotest.fail "oversized length accepted");
  (match Net.Frame.frame_length (prefix 1) ~off:0 ~avail:4 with
   | `Error (Net.Frame.Malformed _) -> ()
   | _ -> Alcotest.fail "absurd length accepted");
  (match Net.Frame.frame_length (prefix 100) ~off:0 ~avail:3 with
   | `Need_more -> ()
   | _ -> Alcotest.fail "short prefix not Need_more")

let addr_parsing () =
  let check s expect =
    Util.check_bool
      (Printf.sprintf "parse %S" s)
      true
      (Net.Conn.parse_addr s = expect)
  in
  check "unix:/tmp/x.sock" (Some (Net.Conn.Unix_path "/tmp/x.sock"));
  check "/tmp/x.sock" (Some (Net.Conn.Unix_path "/tmp/x.sock"));
  check "tcp:127.0.0.1:9090"
    (Some (Net.Conn.Tcp { host = "127.0.0.1"; port = 9090 }));
  check "localhost:80" (Some (Net.Conn.Tcp { host = "localhost"; port = 80 }));
  check "tcp:nohost" None;
  check "host:99999" None;
  check "" None

(* ----------------------- timestamp codecs -------------------------- *)

let codec_roundtrip (type r) label
    (module T : Timestamp.Intf.S with type result = r) gen =
  let c = Net.Codec.for_impl (module T) in
  Util.qtest ~count:200
    (Printf.sprintf "codec: %s (%s) round-trip" (Net.Codec.name c) label)
    gen
    (fun v ->
       let n = c.Net.Codec.c_size v in
       let b = Bytes.create n in
       c.Net.Codec.c_put b 0 v = n
       && T.equal_ts (Net.Codec.decode_exn c (Bytes.to_string b)) v)

let gen_any_int =
  QCheck2.Gen.(
    oneof
      [ int_range (-1000) 1000; int_range 0 max_int;
        map Int.neg (int_range 0 max_int) ])

let codec_roundtrips =
  [ codec_roundtrip "lamport" (module Timestamp.Lamport) gen_any_int;
    codec_roundtrip "sqrt-oneshot"
      (module Timestamp.Sqrt.One_shot)
      QCheck2.Gen.(pair gen_any_int gen_any_int);
    codec_roundtrip "vector"
      (module Timestamp.Vector_ts)
      QCheck2.Gen.(array_size (int_range 0 8) gen_any_int);
    codec_roundtrip "efr"
      (module Timestamp.Efr)
      QCheck2.Gen.(
        oneof
          [ map (fun v -> Timestamp.Efr.Even v) gen_any_int;
            map2 (fun m c -> Timestamp.Efr.Odd (m, c)) gen_any_int
              gen_any_int ]) ]

let codec_rejects () =
  let c = Net.Codec.for_impl (module Timestamp.Vector_ts) in
  let enc v =
    let n = c.Net.Codec.c_size v in
    let b = Bytes.create n in
    ignore (c.Net.Codec.c_put b 0 v);
    Bytes.to_string b
  in
  let malformed s =
    match Net.Codec.decode_exn c s with
    | _ -> false
    | exception Net.Codec.Malformed _ -> true
  in
  let payload = enc [| 1; 200; -3; 1 lsl 40 |] in
  (* every strict prefix is a truncation, never a shorter valid value *)
  for len = 0 to String.length payload - 1 do
    Util.check_bool
      (Printf.sprintf "truncated codec payload at %d rejected" len)
      true
      (malformed (String.sub payload 0 len))
  done;
  Util.check_bool "trailing bytes rejected" true
    (malformed (payload ^ "\000"));
  (* a varint longer than 63 bits is an overflow, not more data *)
  Util.check_bool "varint overflow rejected" true
    (malformed (String.make 10 '\xff'));
  (* an absurd element count is refused before allocating for it *)
  let huge =
    let b = Bytes.create 9 in
    let stop = Net.Codec.put_uv b 0 (Net.Codec.max_vector + 1) in
    Bytes.sub_string b 0 stop
  in
  Util.check_bool "oversized vector count rejected" true (malformed huge);
  (* implementations without a fixed layout refuse to decode at all:
     their Marshal fallback is not a validating parser *)
  match Fuzz.Mutant.find "mutant-lost-increment" with
  | None -> Alcotest.fail "mutant registry lost its seed mutant"
  | Some (Timestamp.Registry.Impl (module M)) ->
    let oc = Net.Codec.for_impl (module M) in
    Util.check_bool "fallback codec is opaque" true
      (Net.Codec.name oc = "opaque");
    Util.check_bool "fallback codec is unsafe" false (Net.Codec.safe oc);
    (match Net.Codec.decode_exn oc "x" with
     | _ -> Alcotest.fail "opaque codec decoded untrusted bytes"
     | exception Net.Codec.Malformed _ -> ())

(* Every registered implementation ships a safe wire codec, so a v2
   server never falls back to refusing [Compare]. *)
let registry_codecs_safe () =
  List.iter
    (fun (Timestamp.Registry.Impl (module T)) ->
       let c = Net.Codec.for_impl (module T) in
       Util.check_bool (Printf.sprintf "%s codec safe" T.name) true
         (Net.Codec.safe c))
    Timestamp.Registry.all

(* The server's hot-path stamp writer must not allocate: byte stores and
   int arithmetic only (E19's microbench pins the same property under
   load; this pins it hermetically). *)
let stamp_writer_zero_alloc () =
  let codec = Net.Codec.for_impl (module Timestamp.Lamport) in
  let b = Net.Buf.create ~cap:4096 () in
  let encode () =
    Net.Buf.clear b;
    Net.Frame.write_stamp_v2 b codec ~pid:3 ~call:123_456 ~shard:1
      ~start_tick:99_999_999 ~end_tick:100_000_007 424_242
  in
  encode ();  (* settle buffer growth before measuring *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    encode ()
  done;
  let delta = Gc.minor_words () -. w0 in
  Util.check_bool
    (Printf.sprintf "10k stamps allocated %.0f minor words" delta)
    true (delta < 256.)

(* ---------------------- live server round trips -------------------- *)

let wire_end_to_end () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let c = C.connect addr in
  let info = C.server_info c in
  Util.check_bool "handshake impl" true
    (info.Net.Frame.si_impl = "lamport-longlived");
  Util.check_int "handshake n" 4 info.Net.Frame.si_n;
  Util.check_int "handshake shards" 1 info.Net.Frame.si_shards;
  let s1 = C.stamp c in
  let s2 = C.stamp c in
  Util.check_bool "per-session calls sequence" true (s1.st_call < s2.st_call);
  Util.check_bool "end ticks advance" true (s1.st_end_tick < s2.st_end_tick);
  Util.check_bool "timestamp order holds" true (C.compare c s1 s2);
  Util.check_bool "server-side compare agrees" (C.compare c s1 s2)
    (C.compare_remote c s1 s2);
  Util.check_bool "server-side compare agrees (reversed)" (C.compare c s2 s1)
    (C.compare_remote c s2 s1);
  let batch = C.stamp_batch c 5 in
  Util.check_int "batch completes" 5 (List.length batch);
  let calls = List.map (fun s -> s.st_call) batch in
  Util.check_bool "batch in issue order" true
    (calls = List.sort Int.compare calls);
  let shard_stats, conn_stats = C.stats c in
  Util.check_int "one shard reported" 1 (List.length shard_stats);
  let reqs =
    List.fold_left (fun a (k : Net.Frame.conn_stat) -> a + k.cn_requests) 0
      conn_stats
  in
  Util.check_bool "connection counters counted us" true (reqs >= 8);
  let stamps =
    List.fold_left (fun a (k : Net.Frame.conn_stat) -> a + k.cn_stamps) 0
      conn_stats
  in
  Util.check_int "stamps counted" 7 stamps;
  C.close c;
  Srv.stop srv;
  Util.check_bool "socket path unlinked" false (Sys.file_exists path)

let session_exhaustion_is_clean () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:1 () in
  let c1 = C.connect addr in
  let _ = C.stamp c1 in
  (* second stamping connection exceeds the long-lived object's n=1 *)
  let c2 = C.connect addr in
  (match C.stamp c2 with
   | _ -> Alcotest.fail "over-n session unexpectedly served"
   | exception Error msg ->
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
       at 0
     in
     Util.check_bool "clean server-side error" true (contains msg "at most"));
  (* the refused connection can still use sessionless requests *)
  let _ = C.server_info c2 in
  Util.check_bool "refused conn still compares" true
    (let s = C.stamp c1 and s' = C.stamp c1 in
     C.compare_remote c2 s s');
  C.close c1;
  C.close c2;
  Srv.stop srv

(* --------------------- leases under concurrency -------------------- *)

let lease_concurrent_clients () =
  let module Srv = Net.Server.Make (Timestamp.Efr) in
  let module C = Net.Client.Make (Timestamp.Efr) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let clients = 3 in
  let rounds = 10 in
  let doms =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let c = C.connect ~lease:8 addr in
            let acc = ref [] in
            for _ = 1 to rounds do
              acc := C.stamp c :: !acc;
              acc := List.rev_append (C.stamp_batch c 3) !acc
            done;
            C.close c;
            (* issue order = reverse of accumulation *)
            List.rev !acc))
  in
  let per_client = List.map Domain.join doms in
  (* each client's stamps mint strictly increasing end ticks *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  List.iteri
    (fun i stamps ->
       Util.check_bool
         (Printf.sprintf "client %d end ticks strictly increase" i)
         true
         (strictly_increasing (List.map (fun s -> s.st_end_tick) stamps)))
    per_client;
  let stamps = List.concat per_client in
  Util.check_int "all stamps arrived" (clients * rounds * 4)
    (List.length stamps);
  (* leases are disjoint: no end tick is ever handed out twice *)
  let ends =
    List.sort Int.compare (List.map (fun s -> s.st_end_tick) stamps)
  in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  Util.check_bool "lease tick ranges disjoint across clients" true
    (no_dup ends);
  (* Stamps minted from one shared cached anchor all carry the anchor's
     start tick, so a fast run can be hb-vacuous (sound, but nothing to
     check).  Force a real pair: poll until the refresher publishes an
     anchor whose getTS started after every reservation above — its
     stamps must order strictly over the whole first phase. *)
  let max_end = List.fold_left (fun m s -> max m s.st_end_tick) 0 stamps in
  let stamps =
    let c = C.connect ~lease:2 addr in
    let deadline = Unix.gettimeofday () +. 5.0 in
    let rec fresh () =
      let s = C.stamp c in
      if s.st_start_tick > max_end then s
      else if Unix.gettimeofday () > deadline then
        Alcotest.fail "anchor never refreshed past the first phase"
      else begin
        Unix.sleepf 0.002;
        fresh ()
      end
    in
    let s = fresh () in
    C.close c;
    s :: stamps
  in
  (* and the real-time checker accepts the whole run *)
  let timed =
    List.map
      (fun s ->
         { Timestamp.Checker.td_pid = s.st_pid; td_call = s.st_call;
           td_start = s.st_start_tick; td_end = s.st_end_tick;
           td_ts = s.st_ts })
      stamps
  in
  (match
     Timestamp.Checker.check_timed ~compare_ts:Timestamp.Efr.compare_ts
       ~pp:Timestamp.Efr.pp_ts timed
   with
   | Result.Ok pairs -> Util.check_bool "checker verified pairs" true (pairs > 0)
   | Result.Error v ->
     Alcotest.failf "leased stamps violate happens-before: %a"
       Timestamp.Checker.pp_violation v);
  Srv.stop srv

(* ------------------------- shutdown paths -------------------------- *)

let shutdown_with_inflight_connections () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let c1 = C.connect addr in
  let _ = C.stamp c1 in
  let c2 = C.connect addr in  (* idle: its handler is blocked in read *)
  Srv.stop srv;  (* must return with both connections still open *)
  (match C.stamp c1 with
   | _ -> Alcotest.fail "stamp served after shutdown"
   | exception Error _ -> ());
  (match C.connect addr with
   | c -> C.close c; Alcotest.fail "connect accepted after shutdown"
   | exception Error _ -> ());
  C.close c1;
  C.close c2;
  (* stop is idempotent *)
  Srv.stop srv

let stop_frame_flow () =
  let module Srv = Net.Server.Make (Timestamp.Efr) in
  let module C = Net.Client.Make (Timestamp.Efr) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:2 () in
  let c = C.connect addr in
  Util.check_bool "no stop requested yet" false (Srv.stop_requested srv);
  C.stop_server c;  (* returns once the server acked Stopping *)
  Util.check_bool "stop flag raised" true (Srv.stop_requested srv);
  Srv.wait srv;  (* returns immediately now *)
  C.close c;
  Srv.stop srv

(* -------------------- raw-socket protocol tests --------------------- *)

(* Hand-rolled peers: drive the reactor with exact byte sequences the
   high-level client would never produce (split writes, version skew,
   pipelined floods). *)

let raw_connect addr =
  let fd =
    Unix.socket ~cloexec:true (Net.Conn.domain_of addr) Unix.SOCK_STREAM 0
  in
  Unix.connect fd (Net.Conn.sockaddr_of addr);
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let read_exact fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    let k = Unix.read fd b !off (n - !off) in
    if k = 0 then failwith "unexpected EOF from server";
    off := !off + k
  done;
  Bytes.to_string b

let read_frame fd =
  let hdr = read_exact fd 4 in
  let len = Int32.to_int (String.get_int32_be hdr 0) in
  read_exact fd len

let frame_of ?version req =
  let b = Net.Buf.create () in
  Net.Frame.write_req ?version b req;
  Net.Buf.contents b

let expect_stamp label payload =
  match Net.Frame.decode_resp payload with
  | Ok (_, Net.Frame.Stamp w) -> w
  | Ok _ -> Alcotest.failf "%s: expected Stamp" label
  | Error e ->
    Alcotest.failf "%s: undecodable: %s" label (Net.Frame.error_to_string e)

(* A frame delivered one byte per read must accumulate across loop
   passes and still be answered. *)
let wire_split_frames () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let addr = Net.Conn.Unix_path (sock_path ()) in
  let srv = Srv.start ~addr ~n:4 () in
  let fd = raw_connect addr in
  let f = frame_of Net.Frame.Get_stamp in
  String.iter
    (fun ch ->
       write_all fd (String.make 1 ch);
       Unix.sleepf 0.002)
    f;
  let w = expect_stamp "split frame" (read_frame fd) in
  Util.check_bool "split frame answered" true (w.Net.Frame.w_end_tick >= 0);
  (* and the next frame, sent whole on the same connection, still works *)
  write_all fd f;
  let w' = expect_stamp "after split" (read_frame fd) in
  Util.check_bool "stream still aligned" true
    (w.Net.Frame.w_end_tick < w'.Net.Frame.w_end_tick);
  Unix.close fd;
  Srv.stop srv

(* A pipelined burst bigger than the 8 KiB read buffer: frames straddle
   refill boundaries; responses must come back complete and in order. *)
let wire_pipelined_burst () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let addr = Net.Conn.Unix_path (sock_path ()) in
  let srv = Srv.start ~addr ~n:4 () in
  let fd = raw_connect addr in
  let k = 3000 in
  let burst =
    let b = Net.Buf.create () in
    for _ = 1 to k do
      Net.Frame.write_req b Net.Frame.Get_stamp
    done;
    Net.Buf.contents b
  in
  Util.check_bool "burst straddles the read buffer" true
    (String.length burst > 8192);
  write_all fd burst;
  let last = ref (-1) in
  for i = 1 to k do
    let w = expect_stamp (Printf.sprintf "burst %d" i) (read_frame fd) in
    Util.check_bool "burst responses in order" true
      (!last < w.Net.Frame.w_end_tick);
    last := w.Net.Frame.w_end_tick
  done;
  Unix.close fd;
  Srv.stop srv

(* A reader that stalls while the server owes it hundreds of KiB: the
   write queue grows past the high-water mark, the loop stops reading
   from the connection (backpressure), and once the reader drains,
   every response arrives, in order, with nothing lost. *)
let wire_slow_reader_backpressure () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let addr = Net.Conn.Unix_path (sock_path ()) in
  let srv = Srv.start ~addr ~n:4 () in
  let fd = raw_connect addr in
  let k = 20_000 in
  let burst =
    let b = Net.Buf.create () in
    for _ = 1 to k do
      Net.Frame.write_req b Net.Frame.Get_stamp
    done;
    Net.Buf.contents b
  in
  (* the writer must not share the reader's pace, or the test deadlocks
     against the very backpressure it is checking *)
  let writer = Domain.spawn (fun () -> write_all fd burst) in
  let last = ref (-1) in
  for i = 1 to k do
    if i <= 20 then Unix.sleepf 0.005;  (* stall: let the backlog build *)
    let w = expect_stamp (Printf.sprintf "slow %d" i) (read_frame fd) in
    Util.check_bool "responses survive backpressure in order" true
      (!last < w.Net.Frame.w_end_tick);
    last := w.Net.Frame.w_end_tick
  done;
  Domain.join writer;
  Unix.close fd;
  Srv.stop srv

(* Version negotiation, wire-level: a v1 peer is answered in v1
   (Marshal timestamps, codec "marshal"), except [Compare] — decoding a
   v1 Marshal payload from the network is exactly what v2 removed. *)
let wire_v1_peer () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let addr = Net.Conn.Unix_path (sock_path ()) in
  let srv = Srv.start ~addr ~n:4 () in
  let fd = raw_connect addr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  write_all fd (frame_of ~version:1 Net.Frame.Ping);
  (match Net.Frame.decode_resp (read_frame fd) with
   | Ok (1, Net.Frame.Pong info) ->
     Util.check_bool "v1 pong impl" true
       (info.Net.Frame.si_impl = "lamport-longlived");
     Util.check_bool "v1 pong codec is marshal" true
       (info.Net.Frame.si_codec = "marshal")
   | _ -> Alcotest.fail "v1 ping not answered with a v1 Pong");
  write_all fd (frame_of ~version:1 Net.Frame.Get_stamp);
  (match Net.Frame.decode_resp (read_frame fd) with
   | Ok (1, Net.Frame.Stamp w) ->
     (* v1 carries Marshal — fine to decode here: we produced it *)
     let ts : int = Marshal.from_string w.Net.Frame.w_ts 0 in
     Util.check_bool "v1 stamp payload decodes" true (ts >= 0)
   | _ -> Alcotest.fail "v1 Get_stamp not answered with a v1 Stamp");
  let blob = Marshal.to_string 1 [] in
  write_all fd (frame_of ~version:1 (Net.Frame.Compare { a = blob; b = blob }));
  (match Net.Frame.decode_resp (read_frame fd) with
   | Ok (1, Net.Frame.Err msg) ->
     Util.check_bool "v1 compare refused for version reasons" true
       (contains msg "version")
   | _ -> Alcotest.fail "v1 Compare was not refused");
  (* an unknown version draws the exact error the client's fallback
     scans for, then the connection closes *)
  write_all fd "\000\000\000\002\007\001";
  (match Net.Frame.decode_resp (read_frame fd) with
   | Ok (_, Net.Frame.Err msg) ->
     Util.check_bool "bad version error text" true
       (contains msg "bad frame version 7")
   | _ -> Alcotest.fail "bad version byte not answered with Err");
  Unix.close fd;
  Srv.stop srv

(* Connection churn: 200 sequential connect/close cycles must not grow
   the domain count (the PR-9 design leaked one handler domain per
   connection ever accepted) and the telemetry table stays at
   [conn_slots] slots with the live count draining back to zero. *)
let wire_churn_bounded () =
  let module Srv = Net.Server.Make (Timestamp.Efr) in
  let module C = Net.Client.Make (Timestamp.Efr) in
  let addr = Net.Conn.Unix_path (sock_path ()) in
  let srv = Srv.start ~addr ~n:4 ~conn_slots:2 () in
  let d0 = Srv.domains srv in
  Util.check_bool "domain budget: io_threads + accept + refresher" true
    (d0 <= Srv.io_threads srv + 2);
  for _ = 1 to 200 do
    let c = C.connect addr in
    C.close c
  done;
  Util.check_int "no domains spawned by churn" d0 (Srv.domains srv);
  Util.check_int "conns accounted" 200 (Srv.conns_total srv);
  let sources = Srv.net_sources srv in
  Util.check_int "gauge table capped at conn_slots" (2 * 6)
    (List.length sources);
  let live_gauges () =
    List.fold_left
      (fun acc (name, f) ->
         if String.length name >= 6
            && String.sub name (String.length name - 6) 6 = ".conns"
         then acc +. f ()
         else acc)
      0. sources
  in
  (* the loops reap closed fds on their next pass; poll briefly *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    (Srv.live_conns srv > 0 || live_gauges () > 0.)
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Util.check_int "live connections drained" 0 (Srv.live_conns srv);
  Util.check_bool "live slot gauges drained" true (live_gauges () = 0.);
  Srv.stop srv

(* --------------------- the in-process transports -------------------- *)

let inproc_client_api () =
  let module S = Svc.Service.Make (Timestamp.Efr) in
  let module C = Svc.Client.Inproc (Timestamp.Efr) in
  let svc = S.start ~n:2 () in
  let c = C.connect svc in
  let s1 = C.stamp c in
  let batch = C.stamp_batch c 4 in
  let s2 = C.stamp c in
  Util.check_int "batch size" 4 (List.length batch);
  let all = (s1 :: batch) @ [ s2 ] in
  let calls = List.map (fun s -> s.st_call) all in
  Util.check_bool "calls sequential per session" true
    (calls = List.init (List.length all) (fun i -> i));
  Util.check_bool "order holds" true (C.compare c s1 s2);
  let d = C.stamp_async c in
  let s3 = d () in
  Util.check_bool "async completes after s2" true
    (s2.st_end_tick < s3.st_end_tick);
  C.close c;
  S.stop svc

let direct_client_api () =
  let module C = Svc.Client.Direct (Timestamp.Lamport) in
  let ctx = C.create_ctx ~n:2 () in
  let c0 = C.connect ctx in
  let c1 = C.connect ctx in
  let a = C.stamp c0 in
  let b = C.stamp c1 in
  Util.check_int "first client owns pid 0" 0 a.st_pid;
  Util.check_int "second client owns pid 1" 1 b.st_pid;
  Util.check_bool "order holds" true (C.compare c0 a b);
  (match C.connect ctx with
   | _ -> Alcotest.fail "third long-lived client admitted at n=2"
   | exception Invalid_argument _ -> ());
  C.close c0;
  C.close c1

let suite =
  ( "net",
    [ req_roundtrip;
      resp_roundtrip;
      req_roundtrip_v1;
      resp_roundtrip_v1;
      Util.case "frame: truncated/oversized/bad-version rejected" frame_rejects ]
    @ codec_roundtrips
    @ [ Util.case "codec: truncated/oversized/opaque rejected" codec_rejects;
      Util.case "codec: every registry impl has a safe codec"
        registry_codecs_safe;
      Util.case "frame: v2 stamp writer allocates nothing"
        stamp_writer_zero_alloc;
      Util.case "conn: address parsing" addr_parsing;
      Util.case "wire: end-to-end over a unix socket" wire_end_to_end;
      Util.case "wire: frames split across byte-sized reads"
        wire_split_frames;
      Util.case "wire: pipelined burst straddles the read buffer"
        wire_pipelined_burst;
      Util.case "wire: slow reader gets backpressure, loses nothing"
        wire_slow_reader_backpressure;
      Util.case "wire: v1 peer negotiation and v1 Compare refusal"
        wire_v1_peer;
      Util.case "wire: churn keeps domains and gauges bounded"
        wire_churn_bounded;
      Util.case "wire: session exhaustion is a clean error"
        session_exhaustion_is_clean;
      Util.case "lease: concurrent clients stay hb-sound"
        lease_concurrent_clients;
      Util.case "shutdown: graceful with in-flight connections"
        shutdown_with_inflight_connections;
      Util.case "shutdown: Stop frame reaches the owner" stop_frame_flow;
      Util.case "client: Inproc transport semantics" inproc_client_api;
      Util.case "client: Direct transport semantics" direct_client_api ] )
