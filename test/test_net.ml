(* Network layer: frame codec round-trips and rejection, the TCP/Unix
   transport end to end against a live server, epoch-range lease
   soundness under concurrent clients, and graceful shutdown with
   connections still open. *)

open Svc.Client

let sock_path () =
  let p = Filename.temp_file "tsnet" ".sock" in
  (* Server.start unlinks an existing path before bind *)
  p

(* ------------------------- frame codec ---------------------------- *)

let gen_blob = QCheck2.Gen.(string_size (int_range 0 64))

let gen_req =
  QCheck2.Gen.(
    oneof
      [ return Net.Frame.Ping;
        return Net.Frame.Get_stamp;
        map (fun k -> Net.Frame.Get_range k) (int_range 1 Net.Frame.max_lease);
        map2 (fun a b -> Net.Frame.Compare { a; b }) gen_blob gen_blob;
        return Net.Frame.Stats;
        return Net.Frame.Stop ])

let gen_resp =
  let open QCheck2.Gen in
  let nat = int_range 0 1_000_000 in
  let gen_info =
    map2
      (fun (impl, backend) (n, shards) ->
         Net.Frame.Pong
           { si_impl = impl;
             si_kind = (if n land 1 = 0 then `One_shot else `Long_lived);
             si_n = n; si_shards = shards; si_backend = backend })
      (pair gen_blob gen_blob) (pair nat nat)
  in
  let gen_stamp =
    map2
      (fun (pid, call) ((shard, (s, e)), ts) ->
         Net.Frame.Stamp
           { w_pid = pid; w_call = call; w_shard = shard; w_start_tick = s;
             w_end_tick = e; w_ts = ts })
      (pair nat nat)
      (pair (pair nat (pair nat nat)) gen_blob)
  in
  let gen_range =
    map2
      (fun ((pid, call), (shard, start)) ((base, count), ts) ->
         Net.Frame.Range
           { g_pid = pid; g_call = call; g_shard = shard;
             g_start_tick = start; g_base = base; g_count = count; g_ts = ts })
      (pair (pair nat nat) (pair nat nat))
      (pair (pair nat nat) gen_blob)
  in
  let gen_stats =
    map2
      (fun served reqs ->
         Net.Frame.Stats_reply
           { sr_shards =
               [ { Net.Frame.ss_served = served; ss_batches = served / 2;
                   ss_max_batch = 7 } ];
             sr_conns =
               [ { Net.Frame.cn_slot = 0; cn_conns = 2; cn_requests = reqs;
                   cn_stamps = reqs; cn_leases = 1; cn_bytes_in = 10 * reqs;
                   cn_bytes_out = 30 * reqs } ] })
      nat nat
  in
  oneof
    [ gen_info; gen_stamp; gen_range;
      map (fun v -> Net.Frame.Cmp v) bool;
      gen_stats;
      return Net.Frame.Stopping;
      map (fun m -> Net.Frame.Err m) gen_blob ]

let req_roundtrip =
  Util.qtest ~count:200 "frame: req round-trip" gen_req (fun r ->
      Net.Frame.decode_req (Net.Frame.encode_req r) = Ok r)

let resp_roundtrip =
  Util.qtest ~count:200 "frame: resp round-trip" gen_resp (fun r ->
      Net.Frame.decode_resp (Net.Frame.encode_resp r) = Ok r)

let frame_rejects () =
  let is_err = function Result.Error _ -> true | Result.Ok _ -> false in
  (* every strict prefix of a valid payload is rejected *)
  let payload = Net.Frame.encode_req (Net.Frame.Get_range 1024) in
  for len = 0 to String.length payload - 1 do
    Util.check_bool
      (Printf.sprintf "truncated at %d rejected" len)
      true
      (is_err (Net.Frame.decode_req (String.sub payload 0 len)))
  done;
  (* wrong version byte *)
  let bad_version = "\007" ^ String.sub payload 1 (String.length payload - 1) in
  Util.check_bool "bad version rejected" true
    (Net.Frame.decode_req bad_version = Result.Error (Net.Frame.Bad_version 7));
  (* unknown opcode — on both decoders *)
  let bad_op = "\001\099" in
  Util.check_bool "bad opcode rejected (req)" true
    (Net.Frame.decode_req bad_op = Result.Error (Net.Frame.Bad_opcode 99));
  Util.check_bool "bad opcode rejected (resp)" true
    (Net.Frame.decode_resp bad_op = Result.Error (Net.Frame.Bad_opcode 99));
  (* a response opcode is not a request *)
  Util.check_bool "resp opcode rejected by req decoder" true
    (is_err (Net.Frame.decode_req (Net.Frame.encode_resp Net.Frame.Stopping)));
  (* trailing garbage after a well-formed body *)
  Util.check_bool "trailing bytes rejected" true
    (is_err (Net.Frame.decode_req (payload ^ "x")));
  (* length-prefix screening: oversized and nonsense lengths *)
  let prefix n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    b
  in
  (match
     Net.Frame.frame_length (prefix (Net.Frame.max_payload + 1)) ~off:0
       ~avail:4
   with
   | `Error (Net.Frame.Oversized _) -> ()
   | _ -> Alcotest.fail "oversized length accepted");
  (match Net.Frame.frame_length (prefix 1) ~off:0 ~avail:4 with
   | `Error (Net.Frame.Malformed _) -> ()
   | _ -> Alcotest.fail "absurd length accepted");
  (match Net.Frame.frame_length (prefix 100) ~off:0 ~avail:3 with
   | `Need_more -> ()
   | _ -> Alcotest.fail "short prefix not Need_more")

let addr_parsing () =
  let check s expect =
    Util.check_bool
      (Printf.sprintf "parse %S" s)
      true
      (Net.Conn.parse_addr s = expect)
  in
  check "unix:/tmp/x.sock" (Some (Net.Conn.Unix_path "/tmp/x.sock"));
  check "/tmp/x.sock" (Some (Net.Conn.Unix_path "/tmp/x.sock"));
  check "tcp:127.0.0.1:9090"
    (Some (Net.Conn.Tcp { host = "127.0.0.1"; port = 9090 }));
  check "localhost:80" (Some (Net.Conn.Tcp { host = "localhost"; port = 80 }));
  check "tcp:nohost" None;
  check "host:99999" None;
  check "" None

(* ---------------------- live server round trips -------------------- *)

let wire_end_to_end () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let c = C.connect addr in
  let info = C.server_info c in
  Util.check_bool "handshake impl" true
    (info.Net.Frame.si_impl = "lamport-longlived");
  Util.check_int "handshake n" 4 info.Net.Frame.si_n;
  Util.check_int "handshake shards" 1 info.Net.Frame.si_shards;
  let s1 = C.stamp c in
  let s2 = C.stamp c in
  Util.check_bool "per-session calls sequence" true (s1.st_call < s2.st_call);
  Util.check_bool "end ticks advance" true (s1.st_end_tick < s2.st_end_tick);
  Util.check_bool "timestamp order holds" true (C.compare c s1 s2);
  Util.check_bool "server-side compare agrees" (C.compare c s1 s2)
    (C.compare_remote c s1 s2);
  Util.check_bool "server-side compare agrees (reversed)" (C.compare c s2 s1)
    (C.compare_remote c s2 s1);
  let batch = C.stamp_batch c 5 in
  Util.check_int "batch completes" 5 (List.length batch);
  let calls = List.map (fun s -> s.st_call) batch in
  Util.check_bool "batch in issue order" true
    (calls = List.sort Int.compare calls);
  let shard_stats, conn_stats = C.stats c in
  Util.check_int "one shard reported" 1 (List.length shard_stats);
  let reqs =
    List.fold_left (fun a (k : Net.Frame.conn_stat) -> a + k.cn_requests) 0
      conn_stats
  in
  Util.check_bool "connection counters counted us" true (reqs >= 8);
  let stamps =
    List.fold_left (fun a (k : Net.Frame.conn_stat) -> a + k.cn_stamps) 0
      conn_stats
  in
  Util.check_int "stamps counted" 7 stamps;
  C.close c;
  Srv.stop srv;
  Util.check_bool "socket path unlinked" false (Sys.file_exists path)

let session_exhaustion_is_clean () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:1 () in
  let c1 = C.connect addr in
  let _ = C.stamp c1 in
  (* second stamping connection exceeds the long-lived object's n=1 *)
  let c2 = C.connect addr in
  (match C.stamp c2 with
   | _ -> Alcotest.fail "over-n session unexpectedly served"
   | exception Error msg ->
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
       at 0
     in
     Util.check_bool "clean server-side error" true (contains msg "at most"));
  (* the refused connection can still use sessionless requests *)
  let _ = C.server_info c2 in
  Util.check_bool "refused conn still compares" true
    (let s = C.stamp c1 and s' = C.stamp c1 in
     C.compare_remote c2 s s');
  C.close c1;
  C.close c2;
  Srv.stop srv

(* --------------------- leases under concurrency -------------------- *)

let lease_concurrent_clients () =
  let module Srv = Net.Server.Make (Timestamp.Efr) in
  let module C = Net.Client.Make (Timestamp.Efr) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let clients = 3 in
  let rounds = 10 in
  let doms =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let c = C.connect ~lease:8 addr in
            let acc = ref [] in
            for _ = 1 to rounds do
              acc := C.stamp c :: !acc;
              acc := List.rev_append (C.stamp_batch c 3) !acc
            done;
            C.close c;
            (* issue order = reverse of accumulation *)
            List.rev !acc))
  in
  let per_client = List.map Domain.join doms in
  (* each client's stamps mint strictly increasing end ticks *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  List.iteri
    (fun i stamps ->
       Util.check_bool
         (Printf.sprintf "client %d end ticks strictly increase" i)
         true
         (strictly_increasing (List.map (fun s -> s.st_end_tick) stamps)))
    per_client;
  let stamps = List.concat per_client in
  Util.check_int "all stamps arrived" (clients * rounds * 4)
    (List.length stamps);
  (* leases are disjoint: no end tick is ever handed out twice *)
  let ends =
    List.sort Int.compare (List.map (fun s -> s.st_end_tick) stamps)
  in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  Util.check_bool "lease tick ranges disjoint across clients" true
    (no_dup ends);
  (* and the real-time checker accepts the whole run *)
  let timed =
    List.map
      (fun s ->
         { Timestamp.Checker.td_pid = s.st_pid; td_call = s.st_call;
           td_start = s.st_start_tick; td_end = s.st_end_tick;
           td_ts = s.st_ts })
      stamps
  in
  (match
     Timestamp.Checker.check_timed ~compare_ts:Timestamp.Efr.compare_ts
       ~pp:Timestamp.Efr.pp_ts timed
   with
   | Result.Ok pairs -> Util.check_bool "checker verified pairs" true (pairs > 0)
   | Result.Error v ->
     Alcotest.failf "leased stamps violate happens-before: %a"
       Timestamp.Checker.pp_violation v);
  Srv.stop srv

(* ------------------------- shutdown paths -------------------------- *)

let shutdown_with_inflight_connections () =
  let module Srv = Net.Server.Make (Timestamp.Lamport) in
  let module C = Net.Client.Make (Timestamp.Lamport) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:4 () in
  let c1 = C.connect addr in
  let _ = C.stamp c1 in
  let c2 = C.connect addr in  (* idle: its handler is blocked in read *)
  Srv.stop srv;  (* must return with both connections still open *)
  (match C.stamp c1 with
   | _ -> Alcotest.fail "stamp served after shutdown"
   | exception Error _ -> ());
  (match C.connect addr with
   | c -> C.close c; Alcotest.fail "connect accepted after shutdown"
   | exception Error _ -> ());
  C.close c1;
  C.close c2;
  (* stop is idempotent *)
  Srv.stop srv

let stop_frame_flow () =
  let module Srv = Net.Server.Make (Timestamp.Efr) in
  let module C = Net.Client.Make (Timestamp.Efr) in
  let path = sock_path () in
  let addr = Net.Conn.Unix_path path in
  let srv = Srv.start ~addr ~n:2 () in
  let c = C.connect addr in
  Util.check_bool "no stop requested yet" false (Srv.stop_requested srv);
  C.stop_server c;  (* returns once the server acked Stopping *)
  Util.check_bool "stop flag raised" true (Srv.stop_requested srv);
  Srv.wait srv;  (* returns immediately now *)
  C.close c;
  Srv.stop srv

(* --------------------- the in-process transports -------------------- *)

let inproc_client_api () =
  let module S = Svc.Service.Make (Timestamp.Efr) in
  let module C = Svc.Client.Inproc (Timestamp.Efr) in
  let svc = S.start ~n:2 () in
  let c = C.connect svc in
  let s1 = C.stamp c in
  let batch = C.stamp_batch c 4 in
  let s2 = C.stamp c in
  Util.check_int "batch size" 4 (List.length batch);
  let all = (s1 :: batch) @ [ s2 ] in
  let calls = List.map (fun s -> s.st_call) all in
  Util.check_bool "calls sequential per session" true
    (calls = List.init (List.length all) (fun i -> i));
  Util.check_bool "order holds" true (C.compare c s1 s2);
  let d = C.stamp_async c in
  let s3 = d () in
  Util.check_bool "async completes after s2" true
    (s2.st_end_tick < s3.st_end_tick);
  C.close c;
  S.stop svc

let direct_client_api () =
  let module C = Svc.Client.Direct (Timestamp.Lamport) in
  let ctx = C.create_ctx ~n:2 () in
  let c0 = C.connect ctx in
  let c1 = C.connect ctx in
  let a = C.stamp c0 in
  let b = C.stamp c1 in
  Util.check_int "first client owns pid 0" 0 a.st_pid;
  Util.check_int "second client owns pid 1" 1 b.st_pid;
  Util.check_bool "order holds" true (C.compare c0 a b);
  (match C.connect ctx with
   | _ -> Alcotest.fail "third long-lived client admitted at n=2"
   | exception Invalid_argument _ -> ());
  C.close c0;
  C.close c1

let suite =
  ( "net",
    [ req_roundtrip;
      resp_roundtrip;
      Util.case "frame: truncated/oversized/bad-version rejected" frame_rejects;
      Util.case "conn: address parsing" addr_parsing;
      Util.case "wire: end-to-end over a unix socket" wire_end_to_end;
      Util.case "wire: session exhaustion is a clean error"
        session_exhaustion_is_clean;
      Util.case "lease: concurrent clients stay hb-sound"
        lease_concurrent_clients;
      Util.case "shutdown: graceful with in-flight connections"
        shutdown_with_inflight_connections;
      Util.case "shutdown: Stop frame reaches the owner" stop_frame_flow;
      Util.case "client: Inproc transport semantics" inproc_client_api;
      Util.case "client: Direct transport semantics" direct_client_api ] )
