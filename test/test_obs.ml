(* The instrumentation layer: JSON printer/parser roundtrips, metric
   invariants, collector totals against the simulator's own accounting,
   Chrome-trace well-formedness, and the zero-allocation guarantee of the
   disarmed hook path (the E10 overhead budget rests on it). *)

let json = Alcotest.testable (Fmt.of_to_string Obs.Json.to_string) ( = )

let json_roundtrip () =
  let doc =
    Obs.Json.(
      Obj
        [ ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("string", String "a\"b\\c\n\t\x01d");
          ("list", List [ Int 1; Int 2; Obj [] ]);
          ("nested", Obj [ ("empty", List []) ]) ])
  in
  (match Obs.Json.of_string (Obs.Json.to_string doc) with
   | Ok doc' -> Alcotest.check json "compact roundtrip" doc doc'
   | Error e -> Alcotest.failf "compact reparse failed: %s" e);
  (match Obs.Json.of_string (Obs.Json.pretty_to_string doc) with
   | Ok doc' -> Alcotest.check json "pretty roundtrip" doc doc'
   | Error e -> Alcotest.failf "pretty reparse failed: %s" e);
  (* non-finite floats degrade to null rather than emitting invalid JSON *)
  (match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float Float.nan)) with
   | Ok v -> Alcotest.check json "nan serializes as null" Obs.Json.Null v
   | Error e -> Alcotest.failf "nan output unparseable: %s" e)

let json_errors () =
  let bad s =
    match Obs.Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
    | Error _ -> ()
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ];
  match Obs.Json.of_lines "{\"a\": 1}\n\n[2, 3]\n" with
  | Ok [ _; _ ] -> ()
  | Ok l -> Alcotest.failf "of_lines found %d documents" (List.length l)
  | Error e -> Alcotest.failf "of_lines failed: %s" e

let metric_invariants () =
  let reg = Obs.Metric.registry ~name:"test" () in
  let c = Obs.Metric.counter reg "c" in
  Obs.Metric.incr c;
  Obs.Metric.add c 4;
  Util.check_int "counter value" 5 (Obs.Metric.value c);
  Util.check_int "get-or-create is the same counter" 5
    (Obs.Metric.value (Obs.Metric.counter reg "c"));
  (match Obs.Metric.gauge reg "c" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "kind mismatch not rejected");
  let g = Obs.Metric.gauge reg "g" in
  Obs.Metric.set g 2.5;
  Obs.Metric.set g 1.0;
  Alcotest.(check (float 0.0)) "gauge holds last value" 1.0
    (Obs.Metric.gauge_value g);
  let h = Obs.Metric.histogram ~buckets:[| 1.; 10.; 100. |] reg "h" in
  let obs = [ 0.5; 1.0; 3.0; 99.0; 1000.0 ] in
  List.iter (Obs.Metric.observe h) obs;
  Util.check_int "histogram count" (List.length obs) (Obs.Metric.hist_count h);
  Alcotest.(check (float 1e-9)) "histogram sum"
    (List.fold_left ( +. ) 0. obs)
    (Obs.Metric.hist_sum h);
  let buckets = Obs.Metric.hist_buckets h in
  Util.check_int "bucket counts sum to count" (Obs.Metric.hist_count h)
    (List.fold_left (fun a (_, c) -> a + c) 0 buckets);
  (match List.rev buckets with
   | (bound, overflow) :: _ ->
     Util.check_bool "overflow bound is infinite" true (bound = Float.infinity);
     Util.check_int "overflow holds out-of-range observation" 1 overflow
   | [] -> Alcotest.fail "no buckets");
  (* every JSONL line is a standalone document carrying the schema version *)
  match Obs.Json.of_lines (Obs.Metric.to_jsonl reg) with
  | Error e -> Alcotest.failf "to_jsonl unparseable: %s" e
  | Ok docs ->
    Util.check_int "one line per metric" 3 (List.length docs);
    List.iter
      (fun d ->
         match Obs.Json.member "schema_version" d with
         | Some (Obs.Json.Int v) ->
           Util.check_int "schema_version" Obs.Metric.schema_version v
         | _ -> Alcotest.fail "missing schema_version")
      docs

(* A seeded workload under a collector: the aggregated telemetry must agree
   with the simulator's own path-dependent accounting. *)
let collector_vs_sim () =
  let module H = Timestamp.Harness.Make (Timestamp.Lamport) in
  let collector = Obs.Collector.create () in
  let cfg =
    Obs.Hooks.with_hooks
      (Obs.Collector.hooks collector)
      (fun () -> H.run_random ~calls:3 ~n:4 ~seed:7 ())
  in
  let reads, writes, invocations = Obs.Collector.totals collector in
  Util.check_int "write events = Sim.writes" (Shm.Sim.writes cfg) writes;
  let responses =
    List.init 4 (fun p -> Obs.Collector.proc_responses collector p)
    |> List.fold_left ( + ) 0
  in
  Util.check_int "read+write+respond events = Sim.steps" (Shm.Sim.steps cfg)
    (reads + writes + responses);
  Util.check_int "invocations = sum of Sim.calls"
    (List.init 4 (Shm.Sim.calls cfg) |> List.fold_left ( + ) 0)
    invocations;
  List.iter
    (fun r ->
       Util.check_bool
         (Printf.sprintf "register %d read per history" r)
         true
         (Obs.Collector.reads collector r > 0))
    (Shm.Sim.read_set cfg);
  List.iter
    (fun r ->
       Util.check_bool
         (Printf.sprintf "register %d written per history" r)
         true
         (Obs.Collector.writes collector r > 0
          && Obs.Collector.first_write_step collector r >= 0))
    (Shm.Sim.written_set cfg);
  Util.check_bool "covering occupancy sampled" true
    (Obs.Collector.max_covered collector >= 1)

let trace_well_formed () =
  let trace = Obs.Trace.create ~process_name:"test" () in
  Obs.Hooks.with_hooks (Obs.Trace.hooks trace) (fun () ->
      Obs.Hooks.with_span "outer" (fun () ->
          Obs.Hooks.counter ~name:"k" 1.0;
          Obs.Hooks.with_span "inner" (fun () -> ());
          (* spans from another domain land on their own tid and must
             balance there, not on the main domain's stack *)
          Domain.join
            (Domain.spawn (fun () ->
                 Obs.Hooks.with_span "worker" (fun () -> ())))));
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Trace.to_json trace)) with
  | Error e -> Alcotest.failf "trace JSON unparseable: %s" e
  | Ok doc ->
    let events =
      match Obs.Json.member "traceEvents" doc with
      | Some (Obs.Json.List l) -> l
      | _ -> Alcotest.fail "no traceEvents array"
    in
    Util.check_bool "trace has events" true (List.length events >= 7);
    (* B/E events must nest per tid (the Chrome trace format requirement) *)
    let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
    let stack tid =
      match Hashtbl.find_opt stacks tid with
      | Some s -> s
      | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
    in
    List.iter
      (fun ev ->
         let str name =
           match Obs.Json.member name ev with
           | Some (Obs.Json.String s) -> s
           | _ -> Alcotest.failf "event without %s" name
         in
         let tid =
           match Obs.Json.member "tid" ev with
           | Some (Obs.Json.Int t) -> t
           | _ -> Alcotest.fail "event without tid"
         in
         match str "ph" with
         | "B" ->
           let s = stack tid in
           s := str "name" :: !s
         | "E" -> (
             let s = stack tid in
             match !s with
             | top :: rest when top = str "name" -> s := rest
             | _ -> Alcotest.failf "unbalanced E event %s" (str "name"))
         | _ -> ())
      events;
    Hashtbl.iter
      (fun tid s ->
         Util.check_int (Printf.sprintf "tid %d stack drained" tid) 0
           (List.length !s))
      stacks

(* The hard requirement behind "instrumentation is free when off": the
   disarmed reporting entry points allocate nothing.  A small slack absorbs
   the boxed floats of the Gc.minor_words readings themselves. *)
let disarmed_no_alloc () =
  Obs.Hooks.clear ();
  let rounds = 10_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to rounds do
    Obs.Hooks.sim Obs.Hooks.Read ~pid:1 ~reg:(i land 7);
    Obs.Hooks.sim Obs.Hooks.Write ~pid:0 ~reg:0;
    Obs.Hooks.span_begin ~name:"s";
    Obs.Hooks.span_end ~name:"s";
    Obs.Hooks.counter ~name:"c" 1.0;
    Obs.Hooks.observe ~name:"o" 2.0
  done;
  let w1 = Gc.minor_words () in
  Util.check_bool
    (Printf.sprintf "disarmed hooks allocated %.0f minor words" (w1 -. w0))
    true
    (w1 -. w0 < 64.)

let explore_per_domain () =
  let explore ?steal ~domains ~n () =
    let module T = Timestamp.Simple_oneshot in
    let supplier ~pid ~call = T.program ~n ~pid ~call in
    let cfg =
      Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
    in
    match
      Shm.Explore.explore ?steal ~domains ~supplier
        ~calls_per_proc:(Array.make n 1)
        ~leaf_check:(fun cfg ->
            Result.is_ok (Timestamp.Checker.check_sim (module T) cfg))
        cfg
    with
    | Shm.Explore.Ok stats -> stats
    | Shm.Explore.Counterexample _ -> Alcotest.fail "unexpected counterexample"
  in
  let seq = explore ~domains:1 ~n:2 () in
  Util.check_int "sequential: one domain entry" 1
    (Array.length seq.per_domain);
  Util.check_int "sequential: entry owns all expansions" seq.expanded
    seq.per_domain.(0).d_expanded;
  Util.check_int "sequential: one branch" 1 seq.per_domain.(0).d_branches;
  Util.check_bool "sequential: wall clock measured" true (seq.seconds >= 0.);
  let par = explore ~steal:false ~domains:2 ~n:3 () in
  let sum f = Array.fold_left (fun a d -> a + f d) 0 par.per_domain in
  Util.check_bool "root-split: at most 2 worker entries" true
    (Array.length par.per_domain <= 2 && Array.length par.per_domain >= 1);
  (* the root expansion belongs to no worker; everything else does *)
  Util.check_int "root-split: workers own all but the root expansion"
    (par.expanded - 1)
    (sum (fun d -> d.d_expanded));
  Util.check_int "root-split: dedup hits attributed" par.dedup_hits
    (sum (fun d -> d.d_dedup_hits));
  Util.check_int "root-split: sleep skips attributed" par.sleep_skips
    (sum (fun d -> d.d_sleep_skips));
  Util.check_int "root-split: every root branch stolen once" 3
    (sum (fun d -> d.d_branches));
  Util.check_bool "root-split: exhaustive" true par.exhaustive;
  Util.check_bool "root-split: totals positive" true (par.paths > 0);
  (* steal mode: the breadth-first frontier expansion belongs to no worker
     (possibly many configurations), workers own everything below it *)
  let st = explore ~steal:true ~domains:2 ~n:3 () in
  let sum f = Array.fold_left (fun a d -> a + f d) 0 st.per_domain in
  Util.check_bool "steal: exhaustive" true st.exhaustive;
  Util.check_bool "steal: root owns the frontier expansions" true
    (sum (fun d -> d.d_expanded) < st.expanded);
  Util.check_bool "steal: workers ran the frontier nodes" true
    (sum (fun d -> d.d_branches) > 0);
  (* path/dedup totals are partition-dependent (each domain owns a table),
     so only verdict-relevant positivity is pinned *)
  Util.check_bool "steal: totals positive" true (st.paths > 0)

let percentile_estimates () =
  let reg = Obs.Metric.registry ~name:"pct-test" () in
  let h = Obs.Metric.histogram ~buckets:[| 10.; 20.; 40. |] reg "h" in
  Util.check_bool "empty histogram is nan" true
    (Float.is_nan (Obs.Metric.percentile h 50.));
  List.iter (Obs.Metric.observe h) [ 5.; 15.; 15.; 35. ];
  (* cumulative counts: 1 (<=10), 3 (<=20), 4 (<=40); ranks interpolate
     linearly inside the bucket where they fall *)
  Alcotest.(check (float 1e-9)) "p50 interpolates inside (10,20]" 15.
    (Obs.Metric.percentile h 50.);
  Alcotest.(check (float 1e-9)) "p25 at the first bucket bound" 10.
    (Obs.Metric.percentile h 25.);
  (* estimates clamp to the observed range *)
  Alcotest.(check (float 1e-9)) "p0 clamps to the min" 5.
    (Obs.Metric.percentile h 0.);
  Alcotest.(check (float 1e-9)) "p100 clamps to the max" 35.
    (Obs.Metric.percentile h 100.);
  Alcotest.(check (float 1e-9)) "out-of-range p clamps to 100" 35.
    (Obs.Metric.percentile h 250.);
  Util.check_bool "p99 between p50 and max" true
    (let p99 = Obs.Metric.percentile h 99. in
     p99 >= 15. && p99 <= 35.)

let percentile_monotone () =
  let reg = Obs.Metric.registry ~name:"pct-mono" () in
  let h = Obs.Metric.histogram reg "h" in
  (* default power-of-two buckets; a spread of latencies-in-us values *)
  List.iter
    (fun i -> Obs.Metric.observe h (float_of_int (1 + ((i * 37) mod 900))))
    (List.init 200 Fun.id);
  let prev = ref neg_infinity in
  List.iter
    (fun p ->
       let v = Obs.Metric.percentile h (float_of_int p) in
       Util.check_bool (Printf.sprintf "p%d finite" p) true
         (Float.is_finite v);
       Util.check_bool (Printf.sprintf "p%d monotone" p) true (v >= !prev);
       prev := v)
    [ 0; 10; 25; 50; 75; 90; 99; 100 ]

(* Against the exact sorted-sample oracle: p0/p100 must equal the exact
   min/max, and every interior estimate must land inside the same
   power-of-two bucket as the exact order statistic (the interpolation
   can't do better than the bucket resolution, but must never leave it). *)
let percentile_oracle =
  Util.qtest ~count:60 "percentile vs sorted oracle"
    QCheck2.Gen.(list_size (int_range 1 150) (int_range 1 100_000))
    (fun ints ->
       let vals = List.map float_of_int ints in
       let reg = Obs.Metric.registry ~name:"pct-oracle" () in
       let h = Obs.Metric.histogram reg "h" in
       List.iter (Obs.Metric.observe h) vals;
       let sorted = Array.of_list (List.sort compare vals) in
       let n = Array.length sorted in
       let exact p =
         let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
         sorted.(max 0 (min (n - 1) (rank - 1)))
       in
       let bucket_bounds ex =
         (* default buckets are powers of two: [2^i] *)
         let rec go lo i =
           let hi = float_of_int (1 lsl i) in
           if ex <= hi || i >= 20 then (lo, Float.max hi ex) else go hi (i + 1)
         in
         go 0. 0
       in
       Obs.Metric.percentile h 0. = sorted.(0)
       && Obs.Metric.percentile h 100. = sorted.(n - 1)
       && List.for_all
            (fun p ->
               let est = Obs.Metric.percentile h p in
               let lo, hi = bucket_bounds (exact p) in
               est >= lo && est <= hi)
            [ 10.; 25.; 50.; 75.; 90.; 99.; 99.9 ])

(* Depth observations reach an armed metrics registry from the explore
   DFS (the frontier-depth histogram of the trace/metrics sinks). *)
let explore_depth_histogram () =
  let reg = Obs.Metric.registry ~name:"explore-test" () in
  let module T = Timestamp.Simple_oneshot in
  let n = 2 in
  let supplier ~pid ~call = T.program ~n ~pid ~call in
  let cfg =
    Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
  in
  let stats =
    Obs.Hooks.with_hooks (Obs.Hooks.metrics_hooks reg) (fun () ->
        match
          Shm.Explore.explore ~supplier ~calls_per_proc:(Array.make n 1) cfg
        with
        | Shm.Explore.Ok stats -> stats
        | Shm.Explore.Counterexample _ -> Alcotest.fail "counterexample")
  in
  let h = Obs.Metric.histogram reg "explore.depth" in
  Util.check_int "one depth observation per visit" stats.configurations
    (Obs.Metric.hist_count h)

let suite =
  ( "obs",
    [ Util.case "json roundtrips" json_roundtrip;
      Util.case "json parse errors" json_errors;
      Util.case "metric invariants" metric_invariants;
      Util.case "collector agrees with the simulator" collector_vs_sim;
      Util.case "chrome trace is well-formed" trace_well_formed;
      Util.case "disarmed hooks allocate nothing" disarmed_no_alloc;
      Util.case "percentile estimates" percentile_estimates;
      Util.case "percentile is monotone" percentile_monotone;
      percentile_oracle;
      Util.case "explore per-domain stats" explore_per_domain;
      Util.case "explore depth histogram" explore_depth_histogram ] )
