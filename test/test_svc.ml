(* Service layer: the MPSC inbox, graceful shutdown, batched/unbatched
   equivalence, checker verdicts over served timestamps, determinism. *)

let mpsc_fifo () =
  let q = Svc.Mpsc.create () in
  Util.check_bool "fresh queue empty" true (Svc.Mpsc.is_empty q);
  List.iter (Svc.Mpsc.push q) [ 1; 2; 3; 4; 5 ];
  Util.check_int "depth counts pushes" 5 (Svc.Mpsc.length q);
  Alcotest.(check (list int)) "drain is FIFO" [ 1; 2; 3; 4; 5 ]
    (Svc.Mpsc.drain q);
  Util.check_bool "drained queue empty" true (Svc.Mpsc.is_empty q);
  Util.check_int "depth back to zero" 0 (Svc.Mpsc.length q);
  Alcotest.(check (list int)) "second drain empty" [] (Svc.Mpsc.drain q)

let mpsc_concurrent_producers () =
  let q = Svc.Mpsc.create () in
  let producers = 4 and per = 250 in
  let doms =
    List.init producers (fun i ->
        Domain.spawn (fun () ->
            for j = 0 to per - 1 do
              Svc.Mpsc.push q (i, j)
            done))
  in
  (* consume concurrently with the producers *)
  let total = producers * per in
  let chunks = ref [] in
  let got = ref 0 in
  while !got < total do
    match Svc.Mpsc.drain q with
    | [] -> ignore (Unix.sleepf 1e-4)
    | xs ->
      chunks := xs :: !chunks;
      got := !got + List.length xs
  done;
  List.iter Domain.join doms;
  let drained = List.concat (List.rev !chunks) in
  Util.check_int "nothing lost or duplicated" total (List.length drained);
  (* each producer's pushes stay in order across the merged drains *)
  for i = 0 to producers - 1 do
    let js =
      List.filter_map (fun (p, j) -> if p = i then Some j else None) drained
    in
    Alcotest.(check (list int))
      (Printf.sprintf "producer %d FIFO" i)
      (List.init per Fun.id) js
  done

let shutdown_drains_inflight () =
  let module S = Svc.Service.Make (Timestamp.Efr) in
  let svc = S.start ~batch_max:4 ~shards:2 ~n:4 () in
  let sessions = List.init 4 (fun _ -> S.open_session svc) in
  (* pile up pipelined requests, then stop while they are in flight *)
  let tickets =
    List.concat_map (fun s -> List.init 25 (fun _ -> S.submit s)) sessions
  in
  S.stop svc;
  let resps = List.map S.await tickets in
  Util.check_int "every in-flight request answered" 100 (List.length resps);
  let served =
    Array.fold_left (fun a (st : S.shard_stats) -> a + st.served) 0
      (S.stats svc)
  in
  Util.check_int "shard stats agree" 100 served;
  Util.check_bool "submit after stop raises Stopped" true
    (match S.submit (List.hd sessions) with
     | _ -> false
     | exception S.Stopped -> true);
  (* stop is idempotent *)
  S.stop svc

let batched_equals_unbatched () =
  let open Svc.Loadgen in
  let base =
    { default with clients = 3; requests_per_client = 20; n = 3; seed = 42 }
  in
  let unbatched =
    run Timestamp.Registry.efr
      { base with mode = Service { shards = 1; batch_max = 1 }; pipeline = 1 }
  in
  let batched =
    run Timestamp.Registry.efr
      { base with mode = Service { shards = 2; batch_max = 16 }; pipeline = 4 }
  in
  Util.check_int "unbatched serves every request" 60 unbatched.lg_total;
  Util.check_int "batched serves every request" 60 batched.lg_total;
  Util.check_bool "unbatched passes the checker" true
    (unbatched.lg_violation = None);
  Util.check_bool "batched passes the checker" true
    (batched.lg_violation = None);
  Util.check_bool "unbatched checked real hb pairs" true
    (unbatched.lg_hb_pairs > 0);
  Util.check_bool "batched checked real hb pairs" true
    (batched.lg_hb_pairs > 0);
  (* per-shard served counts add up *)
  Util.check_int "batched shard counts sum" 60
    (List.fold_left (fun a s -> a + s.sr_served) 0 batched.lg_shards)

let oneshot_service_checks () =
  let open Svc.Loadgen in
  let r =
    run Timestamp.Registry.sqrt_oneshot
      { default with
        mode = Service { shards = 2; batch_max = 8 };
        clients = 3; requests_per_client = 10; pipeline = 3; n = 4 }
  in
  (* the loadgen raises n to the 30 one-shot process ids it needs *)
  Util.check_int "one-shot serves every request" 30 r.lg_total;
  Util.check_bool "one-shot passes the checker" true (r.lg_violation = None);
  Util.check_bool "one-shot checked real hb pairs" true (r.lg_hb_pairs > 0)

let direct_mode_checks () =
  let open Svc.Loadgen in
  let r =
    run Timestamp.Registry.vector
      { default with mode = Direct; clients = 3; requests_per_client = 15;
        n = 3 }
  in
  Util.check_int "direct serves every request" 45 r.lg_total;
  Util.check_bool "direct passes the checker" true (r.lg_violation = None)

let single_domain_deterministic () =
  let open Svc.Loadgen in
  let cfg =
    { default with
      mode = Service { shards = 1; batch_max = 8 };
      clients = 1; requests_per_client = 30; pipeline = 4; n = 2; seed = 7 }
  in
  let a = run Timestamp.Registry.lamport cfg in
  let b = run Timestamp.Registry.lamport cfg in
  Util.check_int "one client serves every request" 30 a.lg_total;
  Alcotest.(check (list string)) "identical served sequence under a fixed seed"
    a.lg_timestamps b.lg_timestamps;
  Util.check_bool "deterministic run passes the checker" true
    (a.lg_violation = None)

let open_loop_service_checks () =
  let open Svc.Loadgen in
  let r =
    run Timestamp.Registry.efr
      { default with
        mode = Service { shards = 2; batch_max = 16 };
        arrival = Open { rate = 5000. };
        clients = 2; requests_per_client = 40; pipeline = 4; n = 2 }
  in
  Util.check_int "open loop serves every request" 80 r.lg_total;
  Util.check_bool "open loop passes the checker" true (r.lg_violation = None);
  Util.check_bool "mode string names the rate" true
    (String.length r.lg_mode > 0
     &&
     match String.index_opt r.lg_mode '=' with
     | Some _ -> true
     | None -> false);
  Util.check_bool "open-loop percentiles are ordered" true
    (r.lg_p50_us <= r.lg_p90_us
     && r.lg_p90_us <= r.lg_p99_us
     && r.lg_p99_us <= r.lg_p999_us
     && r.lg_p999_us <= r.lg_max_us);
  Util.check_bool "latencies were recorded" true (r.lg_max_us > 0.)

let open_loop_direct_checks () =
  let open Svc.Loadgen in
  let r =
    run Timestamp.Registry.vector
      { default with
        mode = Direct;
        arrival = Open { rate = 8000. };
        clients = 2; requests_per_client = 30; n = 2 }
  in
  Util.check_int "direct open loop serves every request" 60 r.lg_total;
  Util.check_bool "direct open loop passes the checker" true
    (r.lg_violation = None);
  Util.check_bool "direct open-loop percentiles ordered" true
    (r.lg_p50_us <= r.lg_p99_us && r.lg_p999_us <= r.lg_max_us)

(* The live gauges must not reintroduce per-request allocation: the
   telemetry-armed submit/await_ts path stays pooled on both register
   backends (the E16 overhead budget assumes this). *)
let telemetry_zero_alloc () =
  List.iter
    (fun backend ->
       let module S = Svc.Service.Make (Timestamp.Lamport) in
       let svc = S.start ~shards:1 ~backend ~telemetry:true ~n:2 () in
       let session = S.open_session svc in
       for _ = 1 to 200 do
         ignore (S.await_ts session (S.submit session))
       done;
       let w0 = Gc.minor_words () in
       for _ = 1 to 200 do
         ignore (S.await_ts session (S.submit session))
       done;
       let w1 = Gc.minor_words () in
       (* gauges answer while the service is live *)
       let served =
         match List.assoc_opt "s0.served" (S.telemetry_sources svc) with
         | Some f -> f ()
         | None -> Alcotest.fail "s0.served source missing"
       in
       S.stop svc;
       Util.check_bool
         (Printf.sprintf "%s: served gauge counts"
            (Multicore.Backend.choice_tag backend))
         true (served > 0.);
       let delta = w1 -. w0 in
       Util.check_bool
         (Printf.sprintf
            "%s: telemetry-armed submit/await_ts allocated %.0f minor words"
            (Multicore.Backend.choice_tag backend) delta)
         true (delta < 64.))
    Multicore.Backend.all_choices

(* Free-list exhaustion: the per-session record pool holds at most 256
   records, and the pinned behavior past that point is EXTEND — [submit]
   falls back to a fresh allocation when the pool is empty and never
   blocks or rejects; [release] beyond the cap drops the surplus record
   instead of growing the pool.  300 pipelined in-flight requests on one
   session must therefore all be served, in session FIFO order, with
   distinct call numbers (no record handed out twice while in flight),
   and the pool gauge must sit at the cap afterwards, not at 300. *)
let freelist_exhaustion_extends () =
  let inflight = 300 in
  let module S = Svc.Service.Make (Timestamp.Lamport) in
  let svc = S.start ~shards:1 ~telemetry:true ~n:2 () in
  let session = S.open_session svc in
  let tickets = List.init inflight (fun _ -> S.submit session) in
  let resps = List.map S.await tickets in
  Util.check_int "every pipelined request served" inflight
    (List.length resps);
  List.iteri
    (fun i (r : S.resp) ->
       Util.check_int (Printf.sprintf "request %d keeps session order" i) i
         r.call)
    resps;
  List.iter (fun t -> S.release session t) tickets;
  let pool_after =
    match List.assoc_opt "svc.pool" (S.telemetry_sources svc) with
    | Some f -> int_of_float (f ())
    | None -> Alcotest.fail "svc.pool source missing"
  in
  S.stop svc;
  Util.check_bool
    (Printf.sprintf "release drops past the 256-record cap (pool = %d)"
       pool_after)
    true
    (pool_after > 0 && pool_after <= 256);
  let served =
    Array.fold_left (fun a (st : S.shard_stats) -> a + st.served) 0
      (S.stats svc)
  in
  Util.check_int "shard stats saw all of them" inflight served

let telemetry_sources_totals () =
  let module S = Svc.Service.Make (Timestamp.Efr) in
  let svc = S.start ~shards:2 ~batch_max:4 ~telemetry:true ~n:4 () in
  let sessions = List.init 4 (fun _ -> S.open_session svc) in
  List.iter (fun s -> for _ = 1 to 25 do ignore (S.get_ts s) done) sessions;
  S.stop svc;
  let sources = S.telemetry_sources svc in
  let v name =
    match List.assoc_opt name sources with
    | Some f -> f ()
    | None -> Alcotest.failf "source %s missing" name
  in
  Alcotest.(check (float 1e-9)) "served gauges sum to the total" 100.
    (v "s0.served" +. v "s1.served");
  Alcotest.(check (float 1e-9)) "depth drains to zero after stop" 0.
    (v "s0.depth" +. v "s1.depth");
  Util.check_bool "chunks counted" true (v "s0.chunks" +. v "s1.chunks" > 0.);
  Util.check_bool "batch p50 within batch_max" true
    (let p = v "s0.batch_p50" in p >= 1. && p <= 4.);
  (* attaching telemetry to a disarmed service is a misuse *)
  let disarmed = S.start ~shards:1 ~n:2 () in
  let ts = Obs.Timeseries.create () in
  Util.check_bool "attach_telemetry requires gauges" true
    (match S.attach_telemetry disarmed ts with
     | () -> false
     | exception Invalid_argument _ -> true);
  S.stop disarmed

let suite =
  ( "svc",
    [ Util.case "mpsc drain is FIFO" mpsc_fifo;
      Util.case "mpsc concurrent producers" mpsc_concurrent_producers;
      Util.case "shutdown drains in-flight requests" shutdown_drains_inflight;
      Util.case "batched and unbatched serve the same requests"
        batched_equals_unbatched;
      Util.case "one-shot service passes the checker" oneshot_service_checks;
      Util.case "direct mode passes the checker" direct_mode_checks;
      Util.case "single-domain service is deterministic"
        single_domain_deterministic;
      Util.case "open-loop service passes the checker" open_loop_service_checks;
      Util.case "open-loop direct mode passes the checker"
        open_loop_direct_checks;
      Util.case "telemetry-armed hot path allocates nothing"
        telemetry_zero_alloc;
      Util.case "free-list exhaustion extends, never blocks"
        freelist_exhaustion_extends;
      Util.case "telemetry sources report exact totals"
        telemetry_sources_totals ] )
