(* The fuzz pipeline itself: generator determinism, shrinker mechanics and
   soundness, mutant kills (the harness must catch every planted bug and
   minimize it), clean-implementation survival, repro round-trips, and the
   checked-in corpus of shrunk counterexamples replayed as regressions. *)

let fail_violation (f : Fuzz.Harness.failure) =
  Alcotest.fail
    (Printf.sprintf "unexpected violation on %s (iteration %d): %s" f.impl
       f.iteration f.violation)

(* Same seed, same schedule — byte for byte; different seeds diverge. *)
let generator_deterministic () =
  let cfg = Fuzz.Gen.default ~calls:2 ~max_crashes:2 ~n:5 () in
  let draw seed = Fuzz.Gen.schedule cfg (Random.State.make [| seed |]) in
  Util.check_bool "seed 42 repeats" true (draw 42 = draw 42);
  Util.check_bool "seed 1001 repeats" true (draw 1001 = draw 1001);
  Util.check_bool "seeds 42 and 43 differ" true (draw 42 <> draw 43)

let generator_well_formed () =
  let cfg = Fuzz.Gen.default ~calls:3 ~max_crashes:2 ~n:4 () in
  List.iter
    (fun seed ->
       let actions = Fuzz.Gen.schedule cfg (Random.State.make [| seed |]) in
       let invokes = Array.make 4 0 in
       let crashes = ref 0 in
       List.iter
         (fun (a : Shm.Schedule.action) ->
            match a with
            | Invoke p ->
              Util.check_bool "pid in range" true (p >= 0 && p < 4);
              invokes.(p) <- invokes.(p) + 1
            | Step p | Crash p ->
              Util.check_bool "pid in range" true (p >= 0 && p < 4);
              Util.check_bool "only started processes step or crash" true
                (invokes.(p) > 0);
              (match a with Crash _ -> incr crashes | _ -> ()))
         actions;
       Array.iter
         (fun c -> Util.check_bool "at most [calls] invokes per pid" true (c <= 3))
         invokes;
       Util.check_bool "crash budget respected" true (!crashes <= 2))
    Util.seeds

(* Replay leniency: the same abstract schedule drives a one-shot and a
   long-lived implementation without raising, and drains to quiescence. *)
let replay_lenient_across_kinds () =
  let cfg = Fuzz.Gen.default ~calls:2 ~n:4 () in
  let actions = Fuzz.Gen.schedule cfg (Random.State.make [| 7 |]) in
  List.iter
    (fun (Timestamp.Registry.Impl (module T)) ->
       let sim, stats = Fuzz.Replay.run (module T) ~n:4 actions in
       Util.check_bool (T.name ^ ": drained to quiescence") true
         (Shm.Sim.running sim = []);
       Util.check_int
         (T.name ^ ": every action accounted for")
         (List.length actions)
         (stats.applied + stats.skipped))
    [ Timestamp.Registry.simple_oneshot; Timestamp.Registry.lamport ]

(* Shrinker mechanics on a synthetic oracle: the minimum satisfying
   "three Step 1 actions and one Crash 2" is exactly four actions, and the
   unused system size is lowered. *)
let shrinker_minimizes_synthetic () =
  let oracle ~n:_ (actions : Shm.Schedule.action list) =
    let steps1 =
      List.length (List.filter (fun a -> a = Shm.Schedule.Step 1) actions)
    in
    let crashes2 =
      List.length (List.filter (fun a -> a = Shm.Schedule.Crash 2) actions)
    in
    if steps1 >= 3 && crashes2 >= 1 then Some () else None
  in
  let noise =
    List.concat_map
      (fun i ->
         [ Shm.Schedule.Invoke (i mod 5); Shm.Schedule.Step (i mod 5);
           Shm.Schedule.Step 1 ])
      (List.init 20 (fun i -> i))
    @ [ Shm.Schedule.Crash 2; Shm.Schedule.Step 3 ]
  in
  match Fuzz.Shrink.minimize ~oracle ~n:5 noise with
  | None -> Alcotest.fail "oracle holds on the input"
  | Some m ->
    Util.check_int "minimal length" 4 (List.length m.schedule);
    Util.check_bool "oracle still holds" true
      (oracle ~n:m.n m.schedule <> None);
    Util.check_bool "n lowered below 5" true (m.n < 5);
    Util.check_bool "made progress" true (m.accepted > 0)

let shrinker_rejects_passing_input () =
  Util.check_bool "None on passing schedule" true
    (Fuzz.Shrink.minimize ~oracle:(fun ~n:_ _ -> None) ~n:3
       [ Shm.Schedule.Invoke 0 ]
     = None)

(* Every planted mutant must be killed from a fixed seed, the repro must
   shrink to at most 12 actions, still violate (shrinker soundness), and
   pass on the clean implementation it was copied from. *)
let mutant_kill (Timestamp.Registry.Impl (module M) as mutant) () =
  match
    Fuzz.Harness.run ~iters:500 ~n:4 ~calls:2 ~seed:42
      ~explore_fallback:false ~impls:[ mutant ] ()
  with
  | Fuzz.Harness.Passed _ ->
    Alcotest.fail (M.name ^ " survived 500 iterations")
  | Fuzz.Harness.Failed f ->
    Util.check_bool
      (Printf.sprintf "%s: repro has <= 12 actions (got %d)" M.name
         (List.length f.repro.schedule))
      true
      (List.length f.repro.schedule <= 12);
    Util.check_bool (M.name ^ ": caught within 10 iterations") true
      (f.iteration < 10);
    (match Fuzz.Harness.replay_repro f.repro with
     | Ok (Some _) -> ()
     | Ok None -> Alcotest.fail (M.name ^ ": shrunk repro no longer violates")
     | Error e -> Alcotest.fail e);
    (match Fuzz.Mutant.clean_counterpart M.name with
     | None -> Alcotest.fail (M.name ^ ": no clean counterpart")
     | Some clean ->
       match
         Fuzz.Harness.check_schedule ~impls:[ clean ] ~n:f.repro.n
           f.repro.schedule
       with
       | Ok _ -> ()
       | Error (_, msg) ->
         Alcotest.fail
           (Printf.sprintf "%s: clean counterpart also fails the repro: %s"
              M.name msg))

(* The acceptance bar: every clean implementation survives 10k random
   differential schedules with zero violations. *)
let clean_impls_survive_10k () =
  match
    Fuzz.Harness.run ~iters:10_000 ~n:4 ~calls:2 ~seed:7
      ~impls:Timestamp.Registry.all ()
  with
  | Fuzz.Harness.Passed stats ->
    Util.check_int "all 10k iterations ran" 10_000 stats.iterations;
    Util.check_bool "checked hb pairs" true (stats.hb_pairs > 0)
  | Fuzz.Harness.Failed f -> fail_violation f

let clean_impls_survive_crashes () =
  match
    Fuzz.Harness.run ~iters:1000 ~n:6 ~calls:2 ~max_crashes:2 ~seed:9
      ~impls:Timestamp.Registry.all ()
  with
  | Fuzz.Harness.Passed stats ->
    Util.check_int "all iterations ran" 1000 stats.iterations
  | Fuzz.Harness.Failed f -> fail_violation f

(* Tiny instances flip to exhaustive exploration — and still catch bugs. *)
let explore_fallback () =
  (match
     Fuzz.Harness.run ~n:2 ~calls:1 ~seed:1 ~impls:Timestamp.Registry.all ()
   with
   | Fuzz.Harness.Passed stats ->
     Util.check_bool "exhaustive" true stats.exhaustive
   | Fuzz.Harness.Failed f -> fail_violation f);
  match
    Fuzz.Harness.run ~n:2 ~calls:1 ~seed:1
      ~impls:[ List.hd Fuzz.Mutant.all ] ()
  with
  | Fuzz.Harness.Passed _ ->
    Alcotest.fail "mutant survived exhaustive exploration"
  | Fuzz.Harness.Failed f ->
    Util.check_bool "exhaustively-found repro also small" true
      (List.length f.repro.schedule <= 12)

let repro_roundtrip () =
  let repro : Fuzz.Repro.t =
    { impl = "simple-oneshot";
      n = 3;
      seed = Some 42;
      iteration = Some 5;
      schedule = [ Invoke 0; Step 0; Step 0; Crash 1; Invoke 2 ] }
  in
  (match Fuzz.Repro.of_json (Fuzz.Repro.to_json repro) with
   | Ok r -> Util.check_bool "json round-trip" true (r = repro)
   | Error e -> Alcotest.fail e);
  let path = Filename.temp_file "fuzz_repro" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Fuzz.Repro.save repro path;
       match Fuzz.Repro.load path with
       | Ok r -> Util.check_bool "file round-trip" true (r = repro)
       | Error e -> Alcotest.fail e);
  Util.check_bool "ocaml rendering mentions the actions" true
    (Fuzz.Repro.to_ocaml repro
     = "[ Invoke 0; Step 0; Step 0; Crash 1; Invoke 2 ]")

(* Replay the checked-in corpus of shrunk counterexamples: each one must
   still violate its mutant and pass the mutant's clean counterpart.  New
   shrunk repros get added here by `ts_cli fuzz --repro-out`. *)
let corpus_dir =
  (* resolve next to the test binary so both `dune runtest` (cwd = test dir)
     and `dune exec` (cwd = project root) find the checked-in corpus *)
  let beside_exe =
    Filename.concat (Filename.dirname Sys.executable_name) "repro_corpus"
  in
  if Sys.file_exists beside_exe then beside_exe else "repro_corpus"

let corpus_replays () =
  let files =
    Sys.readdir corpus_dir |> Array.to_list
    (* mutant-*.json are fuzz repros; model-*.json belong to Svc.Model and
       are replayed by Test_model *)
    |> List.filter (fun f ->
        String.starts_with ~prefix:"mutant-" f
        && Filename.check_suffix f ".json")
    |> List.sort String.compare
  in
  Util.check_bool "corpus has at least 3 repros" true (List.length files >= 3);
  List.iter
    (fun file ->
       let path = Filename.concat corpus_dir file in
       match Fuzz.Repro.load path with
       | Error e -> Alcotest.fail (file ^ ": " ^ e)
       | Ok repro ->
         (match Fuzz.Harness.replay_repro repro with
          | Ok (Some _) -> ()
          | Ok None ->
            Alcotest.fail (file ^ ": corpus repro no longer violates")
          | Error e -> Alcotest.fail (file ^ ": " ^ e));
         (match Fuzz.Mutant.clean_counterpart repro.impl with
          | None -> ()
          | Some clean ->
            match
              Fuzz.Harness.check_schedule ~impls:[ clean ] ~n:repro.n
                repro.schedule
            with
            | Ok _ -> ()
            | Error (_, msg) ->
              Alcotest.fail (file ^ ": clean counterpart fails: " ^ msg)))
    files

let suite =
  ( "fuzz",
    [ Util.case "generator is deterministic per seed" generator_deterministic;
      Util.case "generated schedules are well-formed" generator_well_formed;
      Util.case "replay is lenient across kinds" replay_lenient_across_kinds;
      Util.case "shrinker minimizes a synthetic oracle"
        shrinker_minimizes_synthetic;
      Util.case "shrinker rejects passing schedules"
        shrinker_rejects_passing_input;
      Util.case "explore fallback on tiny instances" explore_fallback;
      Util.case "repro round-trips (json, file, ocaml)" repro_roundtrip;
      Util.case "repro corpus replays as regressions" corpus_replays;
      Util.case "clean implementations survive 10k differential iterations"
        clean_impls_survive_10k;
      Util.case "clean implementations survive crash injection"
        clean_impls_survive_crashes ]
    @ List.map
      (fun (Timestamp.Registry.Impl (module M) as mutant) ->
         Util.case
           (Printf.sprintf "mutant kill: %s" M.name)
           (mutant_kill mutant))
      Fuzz.Mutant.all )
