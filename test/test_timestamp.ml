(* Generic properties every timestamp implementation must satisfy, checked
   over the whole registry (paper Section 2 specification). *)

let prop_compare_consistent (impl : Timestamp.Registry.impl) =
  let name = Printf.sprintf "%s: hb implies compare" (Util.impl_name impl) in
  Util.qtest ~count:40 name
    QCheck2.Gen.(pair (int_range 2 24) (int_bound 100_000))
    (fun (n, seed) ->
       let r =
         Timestamp.Registry.(
           probe impl ~n ~seed
             (Workload.Staggered { invoke_prob = 0.05; calls = 3 }))
       in
       r.Timestamp.Registry.hb_pairs >= 0)

let prop_space_within_bound (impl : Timestamp.Registry.impl) =
  let name = Printf.sprintf "%s: space within provisioned" (Util.impl_name impl) in
  Util.qtest ~count:40 name
    QCheck2.Gen.(pair (int_range 1 32) (int_bound 100_000))
    (fun (n, seed) ->
       let r =
         Timestamp.Registry.(
           probe impl ~n ~seed (Workload.Random { calls = 2 }))
       in
       r.Timestamp.Registry.regs_written <= r.Timestamp.Registry.regs_provisioned
       && r.Timestamp.Registry.regs_touched
          <= r.Timestamp.Registry.regs_provisioned)

let prop_waves (impl : Timestamp.Registry.impl) =
  let name = Printf.sprintf "%s: wave workloads check" (Util.impl_name impl) in
  Util.qtest ~count:25 name
    QCheck2.Gen.(pair (int_range 2 20) (int_bound 100_000))
    (fun (n, seed) ->
       let r =
         Timestamp.Registry.(
           probe impl ~n ~seed (Workload.Wave { wave_size = 2 }))
       in
       (* later waves happen after earlier ones: with w waves there are at
          least as many hb pairs as cross-wave pairs of completed calls *)
       r.Timestamp.Registry.hb_pairs > 0 || n <= 2)

let sequential_strictly_increasing (impl : Timestamp.Registry.impl) () =
  let (Timestamp.Registry.Impl (module T)) = impl in
  let module H = Timestamp.Harness.Make (T) in
  List.iter
    (fun n ->
       let _, ts = H.run_sequential ~n in
       let rec pairs = function
         | a :: (b :: _ as rest) ->
           Util.check_bool
             (Printf.sprintf "%s n=%d compare(t_i,t_i+1)" T.name n)
             true (T.compare_ts a b);
           Util.check_bool
             (Printf.sprintf "%s n=%d not compare(t_i+1,t_i)" T.name n)
             false (T.compare_ts b a);
           pairs rest
         | _ -> ()
       in
       pairs ts)
    [ 1; 2; 3; 7; 16; 31 ]

let crash_tolerance (impl : Timestamp.Registry.impl) () =
  (* wait-free implementations must keep working when processes die; the
     fuzz harness also shrinks any counterexample before reporting it *)
  List.iter
    (fun seed ->
       match
         Fuzz.Harness.run ~iters:40 ~n:12 ~calls:2 ~max_crashes:3 ~seed
           ~explore_fallback:false ~impls:[ impl ] ()
       with
       | Fuzz.Harness.Passed _ -> ()
       | Fuzz.Harness.Failed f ->
         Alcotest.fail
           (Printf.sprintf "%s seed %d: %s\nrepro: %s" f.impl seed f.violation
              (Fuzz.Repro.to_ocaml f.repro)))
    Util.seeds

let compare_irreflexive (impl : Timestamp.Registry.impl) () =
  let (Timestamp.Registry.Impl (module T)) = impl in
  let module H = Timestamp.Harness.Make (T) in
  let _, ts = H.run_sequential ~n:8 in
  List.iter
    (fun t ->
       Util.check_bool (T.name ^ ": irreflexive") false (T.compare_ts t t))
    ts

let one_shot_rejects_second_call () =
  List.iter
    (fun (Timestamp.Registry.Impl (module T)) ->
       if T.kind = `One_shot then
         Util.check_bool (T.name ^ " rejects call 1") true
           (match T.program ~n:4 ~pid:0 ~call:1 with
            | _ -> false
            | exception Invalid_argument _ -> true))
    Timestamp.Registry.all

let registry_names_unique () =
  let names = List.map Util.impl_name Timestamp.Registry.all in
  Util.check_int "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let registry_find () =
  Util.check_bool "find existing" true
    (Timestamp.Registry.find "lamport-longlived" <> None);
  Util.check_bool "find missing" true (Timestamp.Registry.find "nope" = None)

let registry_find_exn () =
  Alcotest.(check string) "find_exn existing"
    "efr-longlived"
    (Timestamp.Registry.(name (find_exn "efr-longlived")));
  Alcotest.(check string) "find_exn with matching kind"
    "sqrt-oneshot"
    (Timestamp.Registry.(name (find_exn ~kind:`One_shot "sqrt-oneshot")));
  (match Timestamp.Registry.find_exn "nope" with
   | _ -> Alcotest.fail "find_exn should raise on an unknown name"
   | exception Failure msg ->
     Alcotest.(check string) "uniform unknown-implementation message"
       "unknown implementation \"nope\", try: simple-oneshot, \
        simple-swap-oneshot, sqrt-oneshot, lamport-longlived, efr-longlived, \
        vector-longlived, snapshot-longlived"
       msg);
  (* the kind filter excludes implementations of the other kind and only
     suggests names from the requested pool *)
  match Timestamp.Registry.find_exn ~kind:`One_shot "lamport-longlived" with
  | _ -> Alcotest.fail "find_exn should respect the kind filter"
  | exception Failure msg ->
    Alcotest.(check string) "kind-filtered message"
      "unknown one-shot implementation \"lamport-longlived\", try: \
       simple-oneshot, simple-swap-oneshot, sqrt-oneshot"
      msg

let suite =
  ( "timestamp-generic",
    List.concat_map
      (fun impl ->
         [ prop_compare_consistent impl;
           prop_space_within_bound impl;
           prop_waves impl;
           Util.case
             (Util.impl_name impl ^ ": sequential timestamps increase")
             (sequential_strictly_increasing impl);
           Util.case
             (Util.impl_name impl ^ ": tolerates crash-stop failures")
             (crash_tolerance impl);
           Util.case
             (Util.impl_name impl ^ ": compare is irreflexive")
             (compare_irreflexive impl) ])
      Timestamp.Registry.all
    @ [ Util.case "one-shot objects reject second calls" one_shot_rejects_second_call;
        Util.case "registry names unique" registry_names_unique;
        Util.case "registry find" registry_find;
        Util.case "registry find_exn" registry_find_exn ] )
