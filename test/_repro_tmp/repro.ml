(* Simulate: send buffer with a consumed prefix (off>0), then append a
   frame that triggers Buf.ensure compaction mid-frame. *)
let () =
  let b = Net.Buf.create ~cap:16 () in
  (* 10 pending bytes, consume 4 -> off=4, len=10 *)
  Net.Buf.put_string b "0123456789";
  Net.Buf.consume b 4;
  Printf.printf "off=%d len(pending)=%d\n" (Net.Buf.offset b) (Net.Buf.length b);
  (* Append an Err frame whose body forces growth mid-frame *)
  Net.Frame.write_resp b (Net.Frame.Err "hello");
  let s = Net.Buf.contents b in
  Printf.printf "buffer (%d bytes): %s\n" (String.length s)
    (String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s))));
  (* The first 6 bytes are the old pending "456789"; the frame follows. *)
  let frame = String.sub s 6 (String.length s - 6) in
  let len =
    (Char.code frame.[0] lsl 24) lor (Char.code frame.[1] lsl 16)
    lor (Char.code frame.[2] lsl 8) lor Char.code frame.[3]
  in
  Printf.printf "frame length prefix = %d, actual payload avail = %d\n"
    len (String.length frame - 4);
  let payload = String.sub frame 4 (min len (String.length frame - 4)) in
  match Net.Frame.decode_resp payload with
  | Ok (_, Net.Frame.Err m) -> Printf.printf "OK: decoded Err %S\n" m
  | Ok _ -> print_endline "decoded something else"
  | Error e -> Printf.printf "CORRUPT: %s\n" (Net.Frame.error_to_string e)
