(* The same algorithm programs, interpreted over real OCaml 5 atomics and
   run on parallel domains.  Happens-before between operations is derived
   from a linearizable fetch-and-add counter, and the timestamp
   specification is checked on the real-parallel execution.

   Run with: dune exec examples/multicore_stress.exe *)

let stress (type v r) (module T : Timestamp.Intf.S with type value = v and type result = r)
    ~n ~calls ~rounds =
  let module S = Multicore.Stress.Make (T) in
  let total_pairs = ref 0 in
  let failures = ref 0 in
  for _ = 1 to rounds do
    match S.run_and_check ~n ~calls () with
    | Ok pairs -> total_pairs := !total_pairs + pairs
    | Error e ->
      incr failures;
      Printf.printf "  VIOLATION: %s\n" e
  done;
  Printf.printf "%-18s %d domains, %d rounds: %s (%d ordered pairs checked)\n"
    T.name n rounds
    (if !failures = 0 then "OK" else Printf.sprintf "%d FAILURES" !failures)
    !total_pairs

let () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf "multicore stress (recommended domains on this machine: %d)\n\n"
    cores;
  let n = min 8 (max 2 cores) in
  stress (module Timestamp.Sqrt.One_shot) ~n ~calls:1 ~rounds:50;
  stress (module Timestamp.Simple_oneshot) ~n ~calls:1 ~rounds:50;
  stress (module Timestamp.Lamport) ~n:(min 4 n) ~calls:200 ~rounds:10;
  stress (module Timestamp.Efr) ~n:(min 4 n) ~calls:200 ~rounds:10;
  stress (module Timestamp.Vector_ts) ~n:(min 4 n) ~calls:100 ~rounds:10;
  (* one-shot timestamps with a total-call budget M > n (Section 7) *)
  let module M256 =
    Timestamp.Sqrt.With_calls (struct
      let total_calls = 256
    end)
  in
  stress (module M256) ~n:(min 4 n) ~calls:50 ~rounds:5
