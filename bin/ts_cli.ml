(* Command-line front end: run timestamp workloads, the lower-bound
   adversaries, the Section-6 claim checks, figure rendering, multicore
   stress and the logical-clock demos. *)

open Cmdliner

let impl_names = List.map Timestamp.Registry.name Timestamp.Registry.all

let impl_conv =
  let parse s =
    match Timestamp.Registry.find_exn s with
    | impl -> Ok impl
    | exception Failure msg -> Error (`Msg msg)
  in
  let print ppf impl =
    Format.pp_print_string ppf (Timestamp.Registry.name impl)
  in
  Arg.conv (parse, print)

let impl_arg =
  Arg.(
    value
    & opt impl_conv Timestamp.Registry.lamport
    & info [ "impl"; "i" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Timestamp implementation (one of %s)."
             (String.concat ", " impl_names)))

let n_arg =
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Random seed.")

let calls_arg =
  Arg.(
    value & opt int 2
    & info [ "calls"; "c" ] ~docv:"CALLS"
        ~doc:"getTS calls per process (long-lived objects only).")

(* ------------------------------------------------------------------ *)
(* Instrumentation plumbing.  [--metrics-out] / [--trace-out] attach the
   Obs sinks around a whole command; with neither flag (and no [~force])
   the hooks stay disarmed and the command runs uninstrumented. *)

type obs_out = {
  metrics_out : string option;
  trace_out : string option;
  append : bool;
}

let obs_out_term =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write run metrics as JSONL (one metric per line) to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file (load it in chrome://tracing \
             or Perfetto) to $(docv).")
  in
  let append =
    Arg.(
      value & flag
      & info [ "append" ]
          ~doc:
            "Append to the $(b,--metrics-out), $(b,--trace-out) and \
             $(b,--telemetry-out) files instead of truncating them (the \
             default is truncate).")
  in
  Term.(
    const (fun metrics_out trace_out append ->
        { metrics_out; trace_out; append })
    $ metrics $ trace $ append)

type obs_ctx = {
  registry : Obs.Metric.registry;
  collector : Obs.Collector.t;
  trace : Obs.Trace.t;
}

(* Runs [f] with the sinks installed (collector + metrics registry + trace),
   then flushes the sidecar files and calls [after] for command-specific
   reporting.  [f] receives [Some ctx] to record extra metrics of its own. *)
let with_obs ?(force = false) ?(after = fun _ -> ()) out f =
  match force, out.metrics_out, out.trace_out with
  | false, None, None -> f None
  | _ ->
    let registry = Obs.Metric.registry ~name:"ts_cli" () in
    let collector = Obs.Collector.create () in
    let trace = Obs.Trace.create ~process_name:"ts_cli" () in
    let ctx = { registry; collector; trace } in
    let hooks =
      Obs.Hooks.combine
        [ Obs.Collector.hooks collector;
          Obs.Hooks.metrics_hooks registry;
          Obs.Trace.hooks trace ]
    in
    let result = Obs.Hooks.with_hooks hooks (fun () -> f (Some ctx)) in
    Obs.Collector.fill_registry collector registry;
    Option.iter
      (Obs.Metric.write_jsonl_file ~append:out.append registry)
      out.metrics_out;
    Option.iter (Obs.Trace.write_file ~append:out.append trace) out.trace_out;
    after ctx;
    result

let validate_json_file path =
  let read_all path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read_all path with
  | exception Sys_error e ->
    Printf.eprintf "%s: %s\n" path e;
    false
  | contents ->
    if Filename.check_suffix path ".jsonl" then (
      match Obs.Json.of_lines contents with
      | Ok docs when Obs.Timeseries.looks_like docs -> (
          (* telemetry time series: check the schema, not just the JSON *)
          match Obs.Timeseries.validate docs with
          | Ok v ->
            Printf.printf
              "%s: OK (telemetry schema %d: %d series, %d samples, %d \
               events, %d stalls)\n"
              path Obs.Timeseries.schema_version v.v_series v.v_samples
              v.v_events v.v_stalls;
            true
          | Error e ->
            Printf.eprintf "%s: INVALID telemetry: %s\n" path e;
            false)
      | Ok docs ->
        Printf.printf "%s: OK (%d JSONL documents)\n" path (List.length docs);
        true
      | Error e ->
        Printf.eprintf "%s: INVALID: %s\n" path e;
        false)
    else
      match Obs.Json.of_string contents with
      | Ok _ ->
        Printf.printf "%s: OK (valid JSON)\n" path;
        true
      | Error e ->
        Printf.eprintf "%s: INVALID: %s\n" path e;
        false

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-11s %s\n" "name" "kind" "registers (n=16, 64, 256)";
    Printf.printf "%s\n" (String.make 60 '-');
    List.iter
      (fun impl ->
         let regs n = Timestamp.Registry.num_registers impl ~n in
         Printf.printf "%-18s %-11s %d, %d, %d\n"
           (Timestamp.Registry.name impl)
           (match Timestamp.Registry.kind impl with
            | `One_shot -> "one-shot"
            | `Long_lived -> "long-lived")
           (regs 16) (regs 64) (regs 256))
      Timestamp.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available timestamp implementations.")
    Term.(const run $ const ())

let run_cmd =
  let run impl n seed calls out =
    with_obs out @@ fun _ ->
    let (Timestamp.Registry.Impl (module T)) = impl in
    let module H = Timestamp.Harness.Make (T) in
    let cfg = H.run_random ~invoke_prob:0.05 ~calls ~n ~seed () in
    Printf.printf "implementation: %s   n=%d seed=%d\n" T.name n seed;
    List.iter
      (fun ((op : Shm.History.op), t) ->
         Printf.printf "  p%d.%d -> %s\n" op.pid op.call
           (Format.asprintf "%a" T.pp_ts t))
      (Shm.Sim.results cfg);
    (match H.check cfg with
     | Ok pairs -> Printf.printf "compare-consistency: OK (%d ordered pairs)\n" pairs
     | Error v ->
       Printf.printf "VIOLATION: %s\n"
         (Format.asprintf "%a" Timestamp.Checker.pp_violation v));
    let written, touched = H.space_used cfg in
    Printf.printf "registers: written=%d touched=%d provisioned=%d\n" written
      touched (T.num_registers ~n)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a random workload on an implementation and check it.")
    Term.(const run $ impl_arg $ n_arg $ seed_arg $ calls_arg $ obs_out_term)

let adversary_oneshot_cmd =
  let run impl n grid verbose =
    let (Timestamp.Registry.Impl (module T)) = impl in
    let supplier ~pid ~call = T.program ~n ~pid ~call in
    let cfg =
      Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
    in
    match
      Covering.Oneshot_adversary.run ?grid_width:grid ~fuel:5_000_000
        ~supplier ~cfg ()
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok o ->
      Printf.printf
        "%s n=%d: covered %d registers simultaneously (grid=%d, bound=%.1f, \
         stop: %s)\n"
        T.name n o.j_last
        (match grid with Some g -> g | None -> Covering.Bounds.grid_width n)
        (Covering.Bounds.oneshot_lower n)
        (Format.asprintf "%a" Covering.Oneshot_adversary.pp_stop o.stop);
      List.iter
        (fun r ->
           Printf.printf "  %s\n"
             (Format.asprintf "%a" Covering.Oneshot_adversary.pp_round r);
           if verbose then
             print_string (Covering.Grid.render_sig ~l:r.l r.sig_after))
        o.rounds
  in
  let grid =
    Arg.(
      value
      & opt (some int) None
      & info [ "grid" ] ~docv:"WIDTH"
          ~doc:"Grid width l0 (default: floor(sqrt(2n)) as in the paper).")
  in
  let verbose =
    Arg.(value & flag & info [ "grids"; "v" ] ~doc:"Render a grid per round.")
  in
  Cmd.v
    (Cmd.info "one-shot"
       ~doc:"Run the Theorem 1.2 covering construction (Section 4).")
    Term.(const run $ impl_arg $ n_arg $ grid $ verbose)

let adversary_longlived_cmd =
  let run impl n k =
    let (Timestamp.Registry.Impl (module T)) = impl in
    let supplier ~pid ~call = T.program ~n ~pid ~call in
    let cfg =
      Shm.Sim.create ~n ~num_regs:(T.num_registers ~n) ~init:(T.init_value ~n)
    in
    let k = match k with Some k -> k | None -> n / 2 in
    match
      Covering.Longlived_adversary.run ~fuel:1_000_000 ~supplier ~cfg ~k ()
    with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok o ->
      Printf.printf
        "%s n=%d: reached a (3,%d)-configuration covering %d registers \
         (>= %d required; floor(n/6) = %d) via a %d-action schedule\n"
        T.name n k o.covered ((k + 2) / 3)
        (Covering.Bounds.longlived_lower n)
        o.schedule_length;
      print_string (Covering.Grid.render_sig o.signature)
  in
  let k_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~docv:"K"
          ~doc:"Target (3,k)-configuration (default: floor(n/2)).")
  in
  Cmd.v
    (Cmd.info "long-lived"
       ~doc:"Run the Theorem 1.1 covering construction (Section 3).")
    Term.(const run $ impl_arg $ n_arg $ k_arg)

let adversary_cmd =
  Cmd.group
    (Cmd.info "adversary"
       ~doc:"Executable lower-bound constructions (covering arguments).")
    [ adversary_oneshot_cmd; adversary_longlived_cmd ]

let figure_cmd =
  let run which n =
    let supplier ~pid ~call = Timestamp.Sqrt.One_shot.program ~n ~pid ~call in
    let cfg =
      Shm.Sim.create ~n
        ~num_regs:(Timestamp.Sqrt.One_shot.num_registers ~n)
        ~init:Timestamp.Sqrt.Bot
    in
    match Covering.Oneshot_adversary.run ~fuel:5_000_000 ~supplier ~cfg () with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok o -> (
        let l = Covering.Bounds.grid_width n in
        match which, o.rounds with
        | 1, first :: _ ->
          Printf.printf
            "Figure 1: a column reaches the diagonal (sqrt algorithm, n=%d)\n"
            n;
          print_string (Covering.Grid.render_sig ~l first.sig_after)
        | 2, rounds when rounds <> [] ->
          let last = List.nth rounds (List.length rounds - 1) in
          Printf.printf
            "Figure 2: configuration after the last round (n=%d, j=%d, l=%d)\n"
            n last.j last.l;
          print_string (Covering.Grid.render_sig ~l:last.l last.sig_after)
        | _ ->
          Printf.eprintf "figure must be 1 or 2, and the run must progress\n";
          exit 1)
  in
  let which =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"FIGURE" ~doc:"Which figure to render (1 or 2).")
  in
  Cmd.v
    (Cmd.info "figure"
       ~doc:"Render the paper's Figure 1 / Figure 2 from a real run.")
    Term.(const run $ which $ n_arg)

let claims_cmd =
  let run n m_calls seed =
    let total_calls = match m_calls with Some m -> m | None -> n in
    let calls_per_proc = max 1 (total_calls / n) in
    let stats =
      Timestamp.Sqrt_claims.run_random ~invoke_prob:0.05 ~n ~seed ~total_calls
        ~calls_per_proc ()
    in
    Printf.printf "%s\n" (Format.asprintf "%a" Timestamp.Sqrt_claims.pp_stats stats);
    List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) stats.violations;
    if stats.violations <> [] then exit 1
  in
  let m_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "total-calls"; "M" ] ~docv:"M"
          ~doc:"Total getTS calls (default: n, the one-shot case).")
  in
  Cmd.v
    (Cmd.info "claims"
       ~doc:"Check the Section-6 claims on a random execution of Algorithm 4.")
    Term.(const run $ n_arg $ m_arg $ seed_arg)

let backend_arg =
  let backend_conv =
    Arg.enum (List.map
                (fun c -> (Multicore.Backend.choice_tag c, c))
                Multicore.Backend.all_choices)
  in
  Arg.(
    value
    & opt backend_conv `Boxed
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Register backend: $(b,boxed) (one atomic heap object per \
           register, the reference layout) or $(b,flat) (cache-line-padded \
           immediate slots with value interning).")

let stress_cmd =
  let run impl n calls backend out =
    let rc =
      with_obs out @@ fun _ ->
      let (Timestamp.Registry.Impl (module T)) = impl in
      let module S = Multicore.Stress.Make (T) in
      match S.run_and_check ~backend ~n ~calls () with
      | Ok pairs ->
        Printf.printf
          "%s: %d domains x %d calls OK (%d ordered pairs checked)\n" T.name n
          (match T.kind with `One_shot -> 1 | `Long_lived -> calls)
          pairs;
        0
      | Error e ->
        Printf.eprintf "VIOLATION: %s\n" e;
        1
    in
    if rc <> 0 then exit rc
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"Run the implementation on real domains and check it.")
    Term.(const run $ impl_arg $ n_arg $ calls_arg $ backend_arg
          $ obs_out_term)

(* Shared between [explore] and [verify-svc]: the stats summary clause and
   the per-domain breakdown.  The sequential stats line is pinned
   byte-for-byte by test/cli.t, so the evictions clause only appears when a
   cap was actually given. *)
let stats_clause ~(stats : Shm.Explore.stats) ~domains ~dedup_cap =
  Printf.sprintf
    "%d configurations expanded, %d dedup hits, %d sleep-set skips, %d \
     truncated paths%s%s%s"
    stats.expanded stats.dedup_hits stats.sleep_skips stats.truncated_paths
    (if stats.symmetric then
       Printf.sprintf ", %d symmetry merges" stats.canon_hits
     else "")
    (match dedup_cap with
     | Some cap -> Printf.sprintf ", %d evictions (cap %d)" stats.evictions cap
     | None -> "")
    (if domains > 1 then Printf.sprintf ", %d domains" domains else "")

let print_per_domain ~(stats : Shm.Explore.stats) =
  Printf.printf "  %.3fs wall, %.0f configurations expanded/s\n" stats.seconds
    (float_of_int stats.expanded /. Float.max stats.seconds 1e-9);
  Array.iteri
    (fun i (d : Shm.Explore.domain_stats) ->
       Printf.printf
         "  domain %d: %d branches, %d expanded, %d dedup hits, %d \
          sleep-set skips%s%s%s, %.3fs busy\n"
         i d.d_branches d.d_expanded d.d_dedup_hits d.d_sleep_skips
         (if stats.symmetric then
            Printf.sprintf ", %d symmetry merges" d.d_canon_hits
          else "")
         (if d.d_steals > 0 then Printf.sprintf ", %d steals" d.d_steals
          else "")
         (if d.d_evictions > 0 then
            Printf.sprintf ", %d evictions" d.d_evictions
          else "")
         d.d_seconds)
    stats.per_domain

(* Resolve the --parallel / --domains pair: an explicit --domains wins,
   --parallel alone asks the runtime, neither means sequential. *)
let resolve_domains ~parallel ~domains_opt =
  match domains_opt with
  | Some d -> max 1 d
  | None -> if parallel then Domain.recommended_domain_count () else 1

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Exact number of worker domains (implies parallel exploration; \
           overrides $(b,--parallel)'s automatic count).")

let no_steal_arg =
  Arg.(
    value & flag
    & info [ "no-steal" ]
        ~doc:
          "Use the older root-split parallel engine (one branch per root \
           action, no work stealing) instead of the work-stealing frontier. \
           Kept for comparison; no effect when sequential.")

let dedup_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "dedup-cap" ] ~docv:"K"
        ~doc:
          "Bound each visited set to $(docv) entries, evicting the oldest \
           (FIFO).  Sound: eviction can only re-explore covered subtrees, \
           never skip one.  Default: unbounded.")

let explore_cmd =
  let run impl n calls max_paths max_steps parallel domains_opt no_steal
      dedup_cap no_dedup no_reduction no_symmetry out =
    let rc =
      with_obs out @@ fun ctx ->
      let (Timestamp.Registry.Impl (module T)) = impl in
      let supplier ~pid ~call = T.program ~n ~pid ~call in
      let cfg =
        Shm.Sim.create ~n ~num_regs:(T.num_registers ~n)
          ~init:(T.init_value ~n)
      in
      let calls = match T.kind with `One_shot -> 1 | `Long_lived -> calls in
      let domains = resolve_domains ~parallel ~domains_opt in
      match
        Shm.Explore.explore ~max_steps ~max_paths ~dedup:(not no_dedup)
          ~reduction:(not no_reduction) ~symmetry:(not no_symmetry) ~domains
          ~steal:(not no_steal) ?dedup_cap ~supplier
          ~calls_per_proc:(Array.make n calls)
          ~leaf_check:(fun cfg ->
              Result.is_ok (Timestamp.Checker.check_sim (module T) cfg))
          cfg
      with
      | Shm.Explore.Ok stats ->
        Printf.printf "%s n=%d calls=%d: %s over %d complete schedules (%s)\n"
          T.name n calls
          (if stats.exhaustive then "EXHAUSTIVELY VERIFIED" else "verified")
          stats.paths
          (stats_clause ~stats ~domains ~dedup_cap);
        if domains > 1 then print_per_domain ~stats;
        Option.iter
          (fun ctx ->
             let g name v = Obs.Metric.set (Obs.Metric.gauge ctx.registry name) v in
             g "explore.seconds" stats.seconds;
             g "explore.expanded_per_sec"
               (float_of_int stats.expanded /. Float.max stats.seconds 1e-9);
             g "explore.dedup_hit_rate"
               (float_of_int stats.dedup_hits
                /. float_of_int (max 1 stats.configurations));
             g "explore.sleep_skips" (float_of_int stats.sleep_skips);
             g "explore.canon_hits" (float_of_int stats.canon_hits);
             g "explore.symmetric" (if stats.symmetric then 1. else 0.);
             g "explore.domains" (float_of_int domains))
          ctx;
        0
      | Shm.Explore.Counterexample { schedule; _ } ->
        Printf.printf "%s n=%d: COUNTEREXAMPLE, schedule of %d actions:\n"
          T.name n (List.length schedule);
        print_string (Shm.Trace.render ~supplier cfg schedule);
        1
    in
    if rc <> 0 then exit rc
  in
  let max_paths =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-paths" ] ~docv:"N" ~doc:"Schedule budget.")
  in
  let max_steps =
    Arg.(
      value & opt int 300
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-schedule depth bound.")
  in
  let parallel =
    Arg.(
      value & flag
      & info [ "parallel"; "P" ]
          ~doc:
            "Spread the exploration across \
             $(b,Domain.recommended_domain_count) worker domains \
             (work-stealing frontier unless $(b,--no-steal)).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:"Disable state deduplication (re-expand revisited states).")
  in
  let no_reduction =
    Arg.(
      value & flag
      & info [ "no-reduction" ]
          ~doc:
            "Disable the independence (sleep-set) reduction; explore every \
             interleaving of independent actions.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Disable the process-symmetry quotient (deduplicate on raw \
             fingerprints even when processes run identical programs).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate every schedule of a small instance and \
          check the specification on each.")
    Term.(
      const run $ impl_arg $ n_arg $ calls_arg $ max_paths $ max_steps
      $ parallel $ domains_arg $ no_steal_arg $ dedup_cap_arg $ no_dedup
      $ no_reduction $ no_symmetry $ obs_out_term)

let verify_svc_cmd =
  let run models n max_paths max_steps parallel domains_opt no_steal dedup_cap
      no_dedup no_reduction no_symmetry mutant replay repro_out =
    let rc =
      match replay with
      | Some path -> (
          match Fuzz.Repro.load path with
          | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            2
          | Ok repro -> (
              match Svc.Model.replay_repro repro with
              | Error e ->
                Printf.eprintf "%s: %s\n" path e;
                2
              | Ok (Some violation) ->
                Printf.printf "repro %s: VIOLATION reproduced (%s, %d actions)\n"
                  path repro.impl
                  (List.length repro.schedule);
                Printf.printf "  %s\n" violation;
                0
              | Ok None ->
                Printf.printf "repro %s: no violation (stale repro?)\n" path;
                3))
      | None ->
        let models =
          match models with [] -> Svc.Model.all | ms -> ms
        in
        let domains = resolve_domains ~parallel ~domains_opt in
        let verify_one model =
          let mname = Svc.Model.name model in
          let tag =
            match mutant with
            | Some m -> Printf.sprintf "%s mutant %s" mname m
            | None -> mname
          in
          match
            Svc.Model.verify ~max_steps ~max_paths ~dedup:(not no_dedup)
              ~reduction:(not no_reduction) ~symmetry:(not no_symmetry)
              ~domains ~steal:(not no_steal) ?dedup_cap ?mutant model ~n
          with
          | Error e ->
            Printf.eprintf "model %s: %s\n" tag e;
            2
          | Ok (Shm.Explore.Ok stats) ->
            let sys =
              (* verify succeeded, so sys is well-formed *)
              Result.get_ok (Svc.Model.sys ?mutant model ~n)
            in
            Printf.printf "model %s n=%d (%d procs): %s over %d complete \
                           schedules (%s)\n"
              tag n sys.Svc.Model.procs
              (if stats.exhaustive then "EXHAUSTIVELY VERIFIED"
               else "verified")
              stats.paths
              (stats_clause ~stats ~domains ~dedup_cap);
            if domains > 1 then print_per_domain ~stats;
            0
          | Ok (Shm.Explore.Counterexample { schedule; at_leaf; _ }) ->
            Printf.printf
              "model %s n=%d: COUNTEREXAMPLE (%s), schedule of %d actions\n"
              tag n
              (if at_leaf then "leaf check" else "invariant")
              (List.length schedule);
            let schedule, why =
              match Svc.Model.shrink ?mutant model ~n schedule with
              | Some (shrunk, why) ->
                Printf.printf "  shrunk: %d -> %d actions\n"
                  (List.length schedule) (List.length shrunk);
                (shrunk, why)
              | None -> (schedule, "violation did not replay (model bug?)")
            in
            Printf.printf "  %s\n" why;
            List.iter
              (fun (a : Shm.Schedule.action) ->
                 match a with
                 | Shm.Schedule.Invoke p ->
                   Printf.printf "    invoke %d\n" p
                 | Shm.Schedule.Step p -> Printf.printf "    step %d\n" p
                 | Shm.Schedule.Crash p -> Printf.printf "    crash %d\n" p)
              schedule;
            Option.iter
              (fun path ->
                 Fuzz.Repro.save (Svc.Model.to_repro ?mutant model ~n schedule)
                   path;
                 Printf.printf "  repro written to %s\n" path)
              repro_out;
            1
        in
        List.fold_left (fun acc m -> max acc (verify_one m)) 0 models
    in
    if rc <> 0 then exit rc
  in
  let model_conv =
    let parse s =
      match Svc.Model.of_name s with
      | Ok m -> Ok m
      | Error e -> Error (`Msg e)
    in
    let print ppf m = Format.pp_print_string ppf (Svc.Model.name m) in
    Arg.conv (parse, print)
  in
  let models =
    Arg.(
      value
      & opt_all model_conv []
      & info [ "model"; "m" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Model to verify (one of %s); repeatable.  Default: all of \
                them."
               (String.concat ", "
                  (List.map Svc.Model.name Svc.Model.all))))
  in
  let n_arg =
    Arg.(
      value & opt int 2
      & info [ "n" ] ~docv:"N"
          ~doc:
            "Clients/producers in the model instance (fixed roles — \
             consumer, workers, stopper — are added on top).")
  in
  let max_paths =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-paths" ] ~docv:"N" ~doc:"Schedule budget.")
  in
  let max_steps =
    Arg.(
      value & opt int 400
      & info [ "max-steps" ] ~docv:"N" ~doc:"Per-schedule depth bound.")
  in
  let parallel =
    Arg.(
      value & flag
      & info [ "parallel"; "P" ]
          ~doc:
            "Spread the exploration across \
             $(b,Domain.recommended_domain_count) worker domains \
             (work-stealing frontier unless $(b,--no-steal)).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:"Disable state deduplication (re-expand revisited states).")
  in
  let no_reduction =
    Arg.(
      value & flag
      & info [ "no-reduction" ]
          ~doc:
            "Disable the independence (sleep-set) reduction; explore every \
             interleaving of independent actions.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Disable the process-symmetry quotient (the stop model's \
             anonymous clients form a nontrivial symmetry class).")
  in
  let mutant =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Plant a deliberately broken model variant (one of %s); used \
                to calibrate the invariants — the explorer must kill it."
               (String.concat ", "
                  (List.map
                     (fun (m : Svc.Model.mutant) -> m.m_name)
                     Svc.Model.mutants))))
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a model repro document (test/repro_corpus/model-*.json) \
             instead of exploring; exit 0 iff the violation still \
             reproduces.")
  in
  let repro_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-out" ] ~docv:"FILE"
          ~doc:"Write the (shrunk) counterexample schedule as a repro JSON.")
  in
  Cmd.v
    (Cmd.info "verify-svc"
       ~doc:
         "Model-check the serving layer: exhaustively explore Shm models of \
          the service's MPSC push/drain, request-record pool, chunked tick \
          reservation and graceful-stop handshake, checking the protocol \
          invariants on every reachable configuration.")
    Term.(
      const run $ models $ n_arg $ max_paths $ max_steps $ parallel
      $ domains_arg $ no_steal_arg $ dedup_cap_arg $ no_dedup $ no_reduction
      $ no_symmetry $ mutant $ replay $ repro_out)

let obs_cmd =
  let run impl n seed calls validate out =
    if validate <> [] then begin
      if not (List.for_all validate_json_file validate) then exit 1
    end
    else begin
      let (Timestamp.Registry.Impl (module T)) = impl in
      let module H = Timestamp.Harness.Make (T) in
      let calls = match T.kind with `One_shot -> 1 | `Long_lived -> calls in
      with_obs ~force:true
        ~after:(fun ctx ->
            Printf.printf "\nregister heatmap:\n";
            Format.printf "%a" Obs.Collector.pp_heatmap ctx.collector;
            Printf.printf "\nmetrics:\n";
            Format.printf "%a@?" Obs.Metric.pp_table ctx.registry)
        out
        (fun _ ->
           let cfg = H.run_random ~invoke_prob:0.05 ~calls ~n ~seed () in
           Printf.printf "implementation: %s   n=%d seed=%d calls=%d\n" T.name
             n seed calls;
           match H.check cfg with
           | Ok pairs ->
             Printf.printf "compare-consistency: OK (%d ordered pairs)\n"
               pairs
           | Error v ->
             Printf.printf "VIOLATION: %s\n"
               (Format.asprintf "%a" Timestamp.Checker.pp_violation v))
    end
  in
  let validate =
    Arg.(
      value
      & opt_all string []
      & info [ "validate" ] ~docv:"FILE"
          ~doc:
            "Instead of running a workload, parse $(docv) as JSON (or JSONL \
             when it ends in .jsonl) and fail on any syntax error.  \
             Repeatable; used by ci.sh to check the emitted sidecars.")
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run an instrumented workload and print the register heatmap and \
          metrics table (write sidecars with --metrics-out/--trace-out).")
    Term.(
      const run $ impl_arg $ n_arg $ seed_arg $ calls_arg $ validate
      $ obs_out_term)

let fuzz_cmd =
  let run impl mutant n seed calls iters crashes burst no_fallback repro_out
      replay out =
    let rc =
      with_obs out @@ fun ctx ->
      match replay with
      | Some path -> (
          match Fuzz.Repro.load path with
          | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            2
          | Ok repro -> (
              match Fuzz.Harness.replay_repro repro with
              | Error e ->
                Printf.eprintf "%s: %s\n" path e;
                2
              | Ok (Some violation) ->
                Printf.printf "repro %s: VIOLATION reproduced (%s, %d actions)\n"
                  path repro.impl
                  (List.length repro.schedule);
                Printf.printf "  %s\n" violation;
                0
              | Ok None ->
                Printf.printf "repro %s: no violation (stale repro?)\n" path;
                3))
      | None ->
        let impls, what =
          match mutant, impl with
          | Some m, _ ->
            ([ m ], "mutant " ^ Timestamp.Registry.name m)
          | None, Some i ->
            ([ i ], Timestamp.Registry.name i)
          | None, None ->
            ( Timestamp.Registry.all,
              Printf.sprintf "differential over %d implementations"
                (List.length Timestamp.Registry.all) )
        in
        Printf.printf "fuzz seed=%d n=%d calls=%d iters=%d: %s\n" seed n calls
          iters what;
        (match
           Fuzz.Harness.run ~iters ~n ~calls ~max_crashes:crashes ~burst
             ~explore_fallback:(not no_fallback) ~seed ~impls ()
         with
         | Fuzz.Harness.Passed stats ->
           if stats.exhaustive then
             Printf.printf
               "fuzz: OK — state space small, exhaustively explored instead \
                (every schedule checked)\n"
           else
             Printf.printf
               "fuzz: OK — %d schedules (%d actions), %d hb pairs checked, 0 \
                violations\n"
               stats.iterations stats.actions stats.hb_pairs;
           Option.iter
             (fun ctx ->
                let g name v =
                  Obs.Metric.set (Obs.Metric.gauge ctx.registry name) v
                in
                g "fuzz.hb_pairs" (float_of_int stats.hb_pairs);
                g "fuzz.actions" (float_of_int stats.actions))
             ctx;
           0
         | Fuzz.Harness.Failed f ->
           Printf.printf "fuzz: VIOLATION (%s, iteration %d)\n" f.impl
             f.iteration;
           Printf.printf "  %s\n" f.violation;
           Printf.printf "  shrunk: %d -> %d actions, n=%d (%d accepted / %d \
                          attempted reductions)\n"
             f.original_len
             (List.length f.repro.schedule)
             f.repro.n f.shrink_accepted f.shrink_attempts;
           Printf.printf "  repro (OCaml): %s\n" (Fuzz.Repro.to_ocaml f.repro);
           Option.iter
             (fun path ->
                Fuzz.Repro.save f.repro path;
                Printf.printf "  repro written to %s\n" path)
             repro_out;
           1)
    in
    if rc <> 0 then exit rc
  in
  let impl_opt =
    Arg.(
      value
      & opt (some impl_conv) None
      & info [ "impl"; "i" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Fuzz a single implementation (one of %s).  Default: all of \
                them, differentially."
               (String.concat ", " impl_names)))
  in
  let mutant_conv =
    let parse s =
      match Fuzz.Mutant.find s with
      | Some impl -> Ok impl
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown mutant %S (expected one of %s)" s
                (String.concat ", " Fuzz.Mutant.names)))
    in
    let print ppf impl =
      Format.pp_print_string ppf (Timestamp.Registry.name impl)
    in
    Arg.conv (parse, print)
  in
  let mutant =
    Arg.(
      value
      & opt (some mutant_conv) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Fuzz a deliberately broken implementation (one of %s); used \
                to calibrate the harness — the fuzzer must catch it."
               (String.concat ", " Fuzz.Mutant.names)))
  in
  let iters =
    Arg.(
      value & opt int 1000
      & info [ "iters" ] ~docv:"N" ~doc:"Random schedules to generate.")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ] ~docv:"K"
          ~doc:"Inject up to $(docv) crash-stop failures per schedule.")
  in
  let burst =
    Arg.(
      value & opt int 4
      & info [ "burst" ] ~docv:"B"
          ~doc:
            "Contention bursts: a scheduling decision runs one process for \
             up to $(docv) consecutive steps.")
  in
  let no_fallback =
    Arg.(
      value & flag
      & info [ "no-explore-fallback" ]
          ~doc:
            "Always sample randomly, even when the instance is small enough \
             for exhaustive exploration.")
  in
  let repro_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-out" ] ~docv:"FILE"
          ~doc:"On violation, write the minimized repro as JSON to $(docv).")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a saved repro instead of fuzzing; exits 0 when the \
             violation reproduces, 3 when it no longer does.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based differential fuzzing: random schedules over every \
          implementation, cross-checked and shrunk to minimal repros.")
    Term.(
      const run $ impl_opt $ mutant $ n_arg $ seed_arg $ calls_arg $ iters
      $ crashes $ burst $ no_fallback $ repro_out $ replay $ obs_out_term)

let distributed_cmd =
  let run impl n replicas ncrashed seed =
    let (Timestamp.Registry.Impl (module T)) = impl in
    let module A = Abd.Emulation.Make (struct
        type v = T.value

        type r = T.result
      end)
    in
    let crashed = List.init ncrashed (fun i -> i) in
    let clients = List.init n (fun pid -> T.program ~n ~pid ~call:0) in
    let rand = Random.State.make [| seed |] in
    match
      A.run ~crashed ~clients ~replicas ~num_regs:(T.num_registers ~n)
        ~init:(T.init_value ~n) ~steps:(5 * n) ~rand ()
    with
    | Error e ->
      Printf.eprintf "error: %s
" e;
      exit 1
    | Ok o -> (
        List.iter
          (fun (c, t) ->
             Printf.printf "  client %d -> %s
" c
               (Format.asprintf "%a" T.pp_ts t))
          o.results;
        match A.check_timestamps ~compare_ts:T.compare_ts o with
        | Ok pairs ->
          Printf.printf
            "%s over ABD: OK (%d clients, %d replicas, %d crashed, %d              ordered pairs, %d messages)
"
            T.name n replicas ncrashed pairs o.messages
        | Error e ->
          Printf.eprintf "VIOLATION: %s
" e;
          exit 1)
  in
  let replicas_arg =
    Arg.(
      value & opt int 3
      & info [ "replicas"; "R" ] ~docv:"R" ~doc:"Number of register replicas.")
  in
  let crashed_arg =
    Arg.(
      value & opt int 0
      & info [ "crashed" ] ~docv:"F"
          ~doc:"Crash the first F replicas (must be a minority).")
  in
  Cmd.v
    (Cmd.info "distributed"
       ~doc:
         "Run the implementation over ABD-emulated registers (message           passing with crash failures).")
    Term.(const run $ impl_arg $ n_arg $ replicas_arg $ crashed_arg $ seed_arg)

let clocks_cmd =
  let run n steps seed =
    let rand = Random.State.make [| seed |] in
    let trace = Mp.Net.random_trace ~n ~steps ~internal_prob:0.4 ~rand () in
    Printf.printf "trace: %d events on %d nodes\n" (List.length trace) n;
    let report name = function
      | Ok () -> Printf.printf "%-14s OK\n" name
      | Error e -> Printf.printf "%-14s FAILED: %s\n" name e
    in
    report "lamport-clock" (Clocks.Lamport_clock.check trace);
    report "vector-clock" (Clocks.Vector_clock.check ~n trace);
    report "matrix-clock" (Clocks.Matrix_clock.check ~n trace)
  in
  let steps_arg =
    Arg.(
      value & opt int 100
      & info [ "steps" ] ~docv:"STEPS" ~doc:"Scheduling decisions to simulate.")
  in
  Cmd.v
    (Cmd.info "clocks"
       ~doc:
         "Generate a message-passing execution and verify the logical clocks.")
    Term.(const run $ n_arg $ steps_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* Service layer: serve (deterministic, cram-pinned) and loadgen.       *)

let telemetry_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry-out" ] ~docv:"FILE"
        ~doc:
          "Sample the live service gauges (per-shard queue depth, served \
           counter, batch-size p50, free-list occupancy) from a dedicated \
           sampler domain into a JSONL time series at $(docv) — watch it \
           with $(b,ts_cli top --file) $(docv), validate it with \
           $(b,ts_cli obs --validate) $(docv).  Truncates unless \
           $(b,--append).")

let telemetry_interval_arg =
  Arg.(
    value & opt int 10_000
    & info [ "telemetry-interval-us" ] ~docv:"US"
        ~doc:"Telemetry sampler period, microseconds.")

let serve_cmd =
  (* the sequential demo session: serve [requests] getTS calls through
     the Svc.Client.Inproc transport and check the compare chain *)
  let serve_demo (type r) (module T : Timestamp.Intf.S with type result = r)
      ~n ~requests ~batch_max ~shards ~backend ~telemetry_out
      ~telemetry_interval ~append =
    let module C = Svc.Client.Inproc (T) in
    let module S = Svc.Service.Make (T) in
    (* a one-shot object consumes one process id per request *)
    let n = match T.kind with `One_shot -> max n requests | `Long_lived -> n in
    let svc =
      S.start ~batch_max ~shards ~backend ~telemetry:(telemetry_out <> None)
        ~n ()
    in
    let ts =
      match telemetry_out with
      | None -> None
      | Some file ->
        let ts = Obs.Timeseries.create ~interval_us:telemetry_interval () in
        S.attach_telemetry svc ts;
        Obs.Timeseries.start ~append ~out:file ts;
        Some (ts, file)
    in
    let client = C.connect svc in
    Printf.printf "service: %s  n=%d shards=%d batch_max=%d\n" T.name n
      (S.num_shards svc) batch_max;
    let resps = List.init requests (fun _ -> C.stamp client) in
    C.close client;
    S.stop svc;
    Option.iter
      (fun (ts, file) ->
         Obs.Timeseries.stop ts;
         Printf.printf "telemetry: %d samples, %d stalls -> %s\n"
           (Obs.Timeseries.samples ts) (Obs.Timeseries.stalls ts) file)
      ts;
    List.iter
      (fun (r : T.result Svc.Client.stamp) ->
         Printf.printf "  req p%d.%d (shard %d) -> %s\n" r.st_pid r.st_call
           r.st_shard
           (Format.asprintf "%a" T.pp_ts r.st_ts))
      resps;
    (* the requests were issued sequentially, so every adjacent pair is
       happens-before ordered and compare must agree *)
    let rec chain = function
      | (a : T.result Svc.Client.stamp) :: (b :: _ as rest) ->
        T.compare_ts a.st_ts b.st_ts
        && not (T.compare_ts b.st_ts a.st_ts)
        && chain rest
      | _ -> true
    in
    if chain resps then begin
      Printf.printf "serve: OK (%d requests, compare chain holds)\n"
        (List.length resps);
      0
    end
    else begin
      Printf.printf "serve: VIOLATION (compare chain broken)\n";
      1
    end
  in
  (* the wire mode: listen on [addr], serve connections until a client
     sends a Stop frame (ts_cli loadgen --stop-server, or Ctrl-C) *)
  let serve_wire (type r) (module T : Timestamp.Intf.S with type result = r)
      ~n ~batch_max ~shards ~backend ~io_threads ~telemetry_out
      ~telemetry_interval ~append addr_str =
    match Net.Conn.parse_addr addr_str with
    | None ->
      Printf.eprintf "ts_cli: serve: cannot parse --listen address %S\n"
        addr_str;
      1
    | Some addr ->
      let module Srv = Net.Server.Make (T) in
      (match
         Srv.start ~batch_max ~shards ~backend ?io_threads
           ~telemetry:(telemetry_out <> None) ~addr ~n ()
       with
       | exception Unix.Unix_error (e, _, _) ->
         Printf.eprintf "ts_cli: serve: cannot listen on %s: %s\n"
           (Net.Conn.addr_to_string addr) (Unix.error_message e);
         1
       | exception Failure msg ->
         Printf.eprintf "ts_cli: serve: %s\n" msg;
         1
       | srv ->
         let ts =
           match telemetry_out with
           | None -> None
           | Some file ->
             let ts =
               Obs.Timeseries.create ~interval_us:telemetry_interval ()
             in
             Srv.attach_telemetry srv ts;
             Obs.Timeseries.start ~append ~out:file ts;
             Some (ts, file)
         in
         Printf.printf
           "serving %s at %s  n=%d shards=%d batch_max=%d io_threads=%d\n"
           T.name
           (Net.Conn.addr_to_string (Srv.bound_addr srv))
           n shards batch_max (Srv.io_threads srv);
         flush stdout;
         Srv.wait srv;
         Srv.stop srv;
         Option.iter
           (fun (ts, file) ->
              Obs.Timeseries.stop ts;
              Printf.printf "telemetry: %d samples, %d stalls -> %s\n"
                (Obs.Timeseries.samples ts) (Obs.Timeseries.stalls ts) file)
           ts;
         Printf.printf "serve: stopped after %d requests over %d connections\n"
           (Srv.requests_total srv) (Srv.conns_total srv);
         0)
  in
  let run impl n requests batch_max shards backend io_threads telemetry_out
      telemetry_interval listen out =
    let rc =
      with_obs out @@ fun _ ->
      let (Timestamp.Registry.Impl (module T)) = impl in
      (* Domain.spawn past the runtime's domain limit aborts the whole
         process, so refuse oversized shard counts up front *)
      if shards < 1 then begin
        Printf.eprintf "ts_cli: serve: --shards must be at least 1\n";
        1
      end
      else if shards > Domain.recommended_domain_count () then begin
        Printf.eprintf
          "ts_cli: serve: --shards %d exceeds this host's recommended \
           domain count; reduce --shards\n"
          shards;
        1
      end
      else if (match io_threads with Some k -> k < 1 | None -> false) then begin
        Printf.eprintf "ts_cli: serve: --io-threads must be at least 1\n";
        1
      end
      else
        match listen with
        | Some addr_str ->
          serve_wire (module T) ~n ~batch_max ~shards ~backend ~io_threads
            ~telemetry_out ~telemetry_interval ~append:out.append addr_str
        | None ->
          serve_demo (module T) ~n ~requests ~batch_max ~shards ~backend
            ~telemetry_out ~telemetry_interval ~append:out.append
    in
    if rc <> 0 then exit rc
  in
  let requests =
    Arg.(
      value & opt int 6
      & info [ "requests"; "r" ] ~docv:"K" ~doc:"getTS requests to serve.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"B" ~doc:"Worker batch-size cap.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S" ~doc:"Worker domains / shards.")
  in
  let io_threads =
    Arg.(
      value
      & opt (some int) None
      & info [ "io-threads" ] ~docv:"N"
          ~doc:
            "I/O event-loop domains for $(b,--listen) (default: one per \
             shard).  Each loop multiplexes many connections, so the \
             domain count stays fixed no matter how many clients \
             connect.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve the wire protocol at $(docv) (\"unix:PATH\", \
             \"tcp:HOST:PORT\", or bare \"HOST:PORT\"; TCP port 0 picks a \
             free port) instead of the sequential demo session.  Runs \
             until a client sends a stop frame ($(b,ts_cli loadgen \
             --stop-server)) or the process is interrupted.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Start the sharded timestamp service; serve a sequential demo \
          session and check the served timestamps, or with $(b,--listen) \
          serve the binary wire protocol to remote clients.")
    Term.(const run $ impl_arg $ n_arg $ requests $ batch $ shards
          $ backend_arg $ io_threads $ telemetry_out_arg
          $ telemetry_interval_arg $ listen $ obs_out_term)

let loadgen_cmd =
  (* drive a live wire server: probe it for its implementation/shape,
     then run the generic engine over Net.Client handles *)
  let loadgen_tcp (type r) (module T : Timestamp.Intf.S with type result = r)
      ~(cfg : Svc.Loadgen.cfg) ~lease ~procs ~stop_server ~print_report
      addr_str =
    match Net.Conn.parse_addr addr_str with
    | None ->
      Printf.eprintf "ts_cli: loadgen: cannot parse --addr %S\n" addr_str;
      1
    | Some addr -> (
        let module C = Net.Client.Make (T) in
        let module D = Svc.Loadgen.Drive (C) in
        try
          let probe = C.connect addr in
          let info = C.server_info probe in
          let mk_setup ~connect ~teardown =
            { D.connect;
              num_shards = max 1 info.Net.Frame.si_shards;
              impl = T.name;
              mode_label =
                Printf.sprintf "net %s lease=%d clients=%d pipeline=%d%s%s"
                  (Net.Conn.addr_to_string addr)
                  lease cfg.clients cfg.pipeline
                  (if procs > 1 then Printf.sprintf " procs=%d" procs else "")
                  (Svc.Loadgen.arrival_string cfg);
              backend_label = info.Net.Frame.si_backend;
              compare_ts = T.compare_ts;
              pp_ts = T.pp_ts;
              attach = None;
              teardown;
              service_stats =
                Some
                  (fun () ->
                     let sh, _ = C.stats probe in
                     Array.of_list
                       (List.map
                          (fun (s : Net.Frame.shard_stat) ->
                             (s.ss_served, s.ss_batches, s.ss_max_batch))
                          sh)) }
          in
          let r =
            if procs > 1 then
              (* forked workers connect for themselves, post-fork; sockets
                 must never be created in the parent and inherited *)
              let worker _p =
                mk_setup
                  ~connect:(fun _ -> C.connect ~lease addr)
                  ~teardown:(fun () -> ())
              in
              D.run_procs ~procs ~child:worker (worker (-1)) cfg
            else begin
              (* pre-connect in the main domain, in client order:
                 connection errors surface here, and session/pid
                 placement is stable *)
              let handles =
                Array.init cfg.clients (fun _ -> C.connect ~lease addr)
              in
              D.run
                (mk_setup
                   ~connect:(fun i -> handles.(i))
                   ~teardown:(fun () -> Array.iter C.close handles))
                cfg
            end
          in
          let rc = print_report r in
          if stop_server then C.stop_server probe;
          C.close probe;
          rc
        with Svc.Client.Error msg ->
          Printf.eprintf "ts_cli: loadgen: %s\n" msg;
          1)
  in
  let run impl n clients requests pipeline shards batch_max direct think_us
      rate transport addr lease procs stop_server telemetry_out
      telemetry_interval seed backend out =
    let rc =
      with_obs out @@ fun _ ->
      let open Svc.Loadgen in
      let mode =
        if direct then Direct else Service { shards; batch_max }
      in
      let arrival =
        match rate with None -> Closed | Some rate -> Open { rate }
      in
      let telemetry =
        Option.map
          (fun tel_out ->
             { tel_out; tel_append = out.append;
               tel_interval_us = telemetry_interval })
          telemetry_out
      in
      let cfg =
        { default with mode; arrival; clients; requests_per_client = requests;
          pipeline; n; seed; think_us; backend; telemetry }
      in
      let print_report (r : report) =
        Printf.printf "loadgen: %s  %s  seed=%d\n" r.lg_impl r.lg_mode seed;
        Printf.printf "served %d requests in %.3fs (%.0f req/s)\n" r.lg_total
          r.lg_elapsed_s r.lg_throughput;
        Printf.printf
          "latency: p50=%.1fus p90=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus\n"
          r.lg_p50_us r.lg_p90_us r.lg_p99_us r.lg_p999_us r.lg_max_us;
        Option.iter
          (fun tel_out ->
             Printf.printf "telemetry: %d samples, %d stalls -> %s\n"
               r.lg_samples r.lg_stalls tel_out)
          telemetry_out;
        List.iter
          (fun s ->
             Printf.printf
               "  shard %d: served=%d batches=%d max_batch=%d p50=%.1fus \
                p99=%.1fus\n"
               s.sr_shard s.sr_served s.sr_batches s.sr_max_batch s.sr_p50_us
               s.sr_p99_us)
          r.lg_shards;
        match r.lg_violation with
        | None ->
          Printf.printf "checker: OK (%d hb pairs)\n" r.lg_hb_pairs;
          0
        | Some v ->
          Printf.printf "checker: VIOLATION: %s\n" v;
          1
      in
      if procs < 1 then begin
        Printf.eprintf "ts_cli: loadgen: --procs must be at least 1\n";
        1
      end
      else if procs > 1 && transport <> `Tcp then begin
        Printf.eprintf "ts_cli: loadgen: --procs requires --transport tcp\n";
        1
      end
      else if procs > 1 && telemetry_out <> None then begin
        Printf.eprintf
          "ts_cli: loadgen: --telemetry-out requires --procs 1 (the \
           sampler cannot span processes)\n";
        1
      end
      else
        match transport with
        | `Inproc -> print_report (Svc.Loadgen.run impl cfg)
        | `Tcp -> (
            match addr with
            | None ->
              Printf.eprintf
                "ts_cli: loadgen: --transport tcp requires --addr\n";
              1
            | Some addr_str ->
              let (Timestamp.Registry.Impl (module T)) = impl in
              loadgen_tcp (module T) ~cfg ~lease ~procs ~stop_server
                ~print_report addr_str)
    in
    if rc <> 0 then exit rc
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"C" ~doc:"Client domains.")
  in
  let requests =
    Arg.(
      value & opt int 100
      & info [ "requests"; "r" ] ~docv:"K" ~doc:"getTS requests per client.")
  in
  let pipeline =
    Arg.(
      value & opt int 1
      & info [ "pipeline" ] ~docv:"P"
          ~doc:"In-flight requests per client (client-side batching).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S" ~doc:"Worker domains / shards.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"B" ~doc:"Worker batch-size cap.")
  in
  let direct =
    Arg.(
      value & flag
      & info [ "direct" ]
          ~doc:
            "Bypass the service: clients execute getTS themselves on the \
             shared registers (the unbatched baseline).")
  in
  let think =
    Arg.(
      value & opt int 0
      & info [ "think-us" ] ~docv:"US"
          ~doc:"Max seeded random think time between bursts, microseconds.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop mode: schedule request arrivals at $(docv) \
             requests/second (aggregate across clients) and measure \
             latency from each request's intended start, so backlog \
             counts against the service (coordinated-omission-correct). \
             Without $(docv) the generator runs the classic closed loop.")
  in
  let transport =
    Arg.(
      value
      & opt (enum [ ("inproc", `Inproc); ("tcp", `Tcp) ]) `Inproc
      & info [ "transport" ] ~docv:"T"
          ~doc:
            "Client transport: $(b,inproc) (default) starts a fresh \
             in-process service; $(b,tcp) drives a live wire server \
             ($(b,ts_cli serve --listen)) at $(b,--addr) through \
             Net.Client — $(b,--shards)/$(b,--batch)/$(b,--direct) are \
             then the server's business and ignored here.")
  in
  let addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "Server address for $(b,--transport tcp): \"unix:PATH\", \
             \"tcp:HOST:PORT\", or bare \"HOST:PORT\".")
  in
  let lease =
    Arg.(
      value & opt int 1
      & info [ "lease" ] ~docv:"K"
          ~doc:
            "Epoch-range lease size ($(b,--transport tcp)): each cache \
             miss fetches one anchor getTS plus $(docv) pre-reserved end \
             ticks, and the client mints the next $(docv) stamps locally \
             — one round trip amortized over $(docv) stamps.  1 (default) \
             = a round trip per stamp.")
  in
  let procs =
    Arg.(
      value & opt int 1
      & info [ "procs" ] ~docv:"K"
          ~doc:
            "Worker processes ($(b,--transport tcp)): fork $(docv) \
             processes, each driving its own $(b,--clients) connections \
             (so the aggregate is $(docv) * $(b,--clients) clients and \
             an open-loop $(b,--rate) is split evenly).  Histograms are \
             merged losslessly in the parent and the happens-before \
             check runs globally over every process's stamps.")
  in
  let stop_server =
    Arg.(
      value & flag
      & info [ "stop-server" ]
          ~doc:
            "After the run, send the server a stop frame so $(b,ts_cli \
             serve --listen) shuts down gracefully and exits 0.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Closed- or open-loop load generator over the timestamp service \
          (in-process, or a live wire server via $(b,--transport tcp)); \
          reports throughput, HDR latency percentiles \
          (p50/p90/p99/p99.9/max) and a happens-before checker verdict.")
    Term.(
      const run $ impl_arg $ n_arg $ clients $ requests $ pipeline $ shards
      $ batch $ direct $ think $ rate $ transport $ addr $ lease $ procs
      $ stop_server $ telemetry_out_arg $ telemetry_interval_arg $ seed_arg
      $ backend_arg $ obs_out_term)

(* ------------------------------------------------------------------ *)
(* top: per-shard table rendered from a telemetry time series.         *)

type top_view = {
  tv_meta : (string * Obs.Json.t) list;
  tv_series : string array;
  tv_samples : (float * float option array) array;  (* (t_us, values) *)
  tv_events : int;
  tv_stalls : int;
  tv_ended : bool;
}

let top_load path : (top_view, string) result =
  let ( let* ) = Result.bind in
  let* contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  let* docs = Obs.Json.of_lines contents in
  let* v = Obs.Timeseries.validate docs in
  ignore v;
  match docs with
  | header :: rest ->
    let series =
      match Obs.Json.member "series" header with
      | Some (Obs.Json.List l) ->
        Array.of_list
          (List.map
             (function Obs.Json.String s -> s | _ -> assert false)
             l)
      | _ -> [||]
    in
    let meta =
      match Obs.Json.member "meta" header with
      | Some (Obs.Json.Obj kvs) -> kvs
      | _ -> []
    in
    let num = function
      | Obs.Json.Int i -> Some (float_of_int i)
      | Obs.Json.Float f -> Some f
      | _ -> None
    in
    let samples = ref [] and events = ref 0 and stalls = ref 0 in
    let ended = ref false in
    List.iter
      (fun doc ->
         match Obs.Json.member "kind" doc with
         | Some (Obs.Json.String "sample") ->
           let t =
             Option.value ~default:0.
               (Option.bind (Obs.Json.member "t_us" doc) num)
           in
           let vs =
             match Obs.Json.member "v" doc with
             | Some (Obs.Json.List l) -> Array.of_list (List.map num l)
             | _ -> [||]
           in
           samples := (t, vs) :: !samples
         | Some (Obs.Json.String "event") ->
           incr events;
           if Obs.Json.member "event" doc = Some (Obs.Json.String "stall")
           then incr stalls
         | Some (Obs.Json.String "end") -> ended := true
         | _ -> ())
      rest;
    Ok
      { tv_meta = meta;
        tv_series = series;
        tv_samples = Array.of_list (List.rev !samples);
        tv_events = !events;
        tv_stalls = !stalls;
        tv_ended = !ended }
  | [] -> Error "empty file"

let top_render path view =
  let buf = Buffer.create 1024 in
  let meta =
    String.concat " "
      (List.map
         (fun (k, v) ->
            Printf.sprintf "%s=%s" k
              (match v with
               | Obs.Json.String s -> s
               | Obs.Json.Int i -> string_of_int i
               | Obs.Json.Float f -> Printf.sprintf "%g" f
               | _ -> "?"))
         view.tv_meta)
  in
  let nsamp = Array.length view.tv_samples in
  let last = if nsamp > 0 then Some view.tv_samples.(nsamp - 1) else None in
  let prev = if nsamp > 1 then Some view.tv_samples.(nsamp - 2) else None in
  Printf.bprintf buf "telemetry: %s%s\n" path
    (if meta = "" then "" else Printf.sprintf "  (%s)" meta);
  Printf.bprintf buf "t=%s  samples=%d  events=%d  stalls=%d  [%s]\n"
    (match last with
     | Some (t, _) -> Printf.sprintf "+%.1fms" (t /. 1e3)
     | None -> "-")
    nsamp view.tv_events view.tv_stalls
    (if view.tv_ended then "ended" else "live");
  let idx name = Array.find_index (String.equal name) view.tv_series in
  let value_at sample name =
    match sample with
    | None -> None
    | Some (_, vs) ->
      Option.bind (idx name) (fun i ->
          if i < Array.length vs then vs.(i) else None)
  in
  (* slots present under a one-letter prefix: every <p><i>. in the
     series list — 's' = service shards, 'c' = connection groups *)
  let slots_with p =
    Array.fold_left
      (fun acc name ->
         match String.index_opt name '.' with
         | Some dot
           when dot > 1 && name.[0] = p
                && String.for_all
                     (fun c -> c >= '0' && c <= '9')
                     (String.sub name 1 (dot - 1)) ->
           let i = int_of_string (String.sub name 1 (dot - 1)) in
           if List.mem i acc then acc else i :: acc
         | _ -> acc)
      [] view.tv_series
    |> List.sort Int.compare
  in
  let shards = slots_with 's' in
  let rate_of served_name =
    match (value_at last served_name, last) with
    | Some s1, Some (t1, _) -> (
        match (value_at prev served_name, prev) with
        | Some s0, Some (t0, _) when t1 > t0 ->
          Some ((s1 -. s0) /. (t1 -. t0) *. 1e6)
        | _ -> if t1 > 0. then Some (s1 /. t1 *. 1e6) else None)
    | _ -> None
  in
  let cell w = function
    | None -> Printf.sprintf "%*s" w "-"
    | Some v -> Printf.sprintf "%*.1f" w v
  in
  let cell0 w = function
    | None -> Printf.sprintf "%*s" w "-"
    | Some v -> Printf.sprintf "%*.0f" w v
  in
  Printf.bprintf buf "%-7s %10s %7s %10s %11s %11s\n" "shard" "rps" "depth"
    "batch_p50" "lat_p50_us" "lat_p99_us";
  List.iter
    (fun i ->
       let s fmt = Printf.sprintf fmt i in
       Printf.bprintf buf "%-7s %s %s %s %s %s\n"
         (Printf.sprintf "s%d" i)
         (cell0 10 (rate_of (s "s%d.served")))
         (cell0 7 (value_at last (s "s%d.depth")))
         (cell 10 (value_at last (s "s%d.batch_p50")))
         (cell 11 (value_at last (s "s%d.lat_p50_us")))
         (cell 11 (value_at last (s "s%d.lat_p99_us"))))
    shards;
  let sum_over fmt_name of_shard =
    List.fold_left
      (fun acc i ->
         match (acc, of_shard (Printf.sprintf fmt_name i)) with
         | Some a, Some v -> Some (a +. v)
         | _ -> None)
      (if shards = [] then None else Some 0.)
      shards
  in
  if shards <> [] then
    Printf.bprintf buf "%-7s %s %s %10s %s %s\n" "total"
      (cell0 10 (sum_over "s%d.served" rate_of))
      (cell0 7 (sum_over "s%d.depth" (value_at last)))
      "-"
      (cell 11 (value_at last "lat.p50_us"))
      (cell 11 (value_at last "lat.p99_us"));
  (* a network serve exports c<slot>.* counter groups — show the wire
     next to the shards *)
  let conns = slots_with 'c' in
  if conns <> [] then begin
    Printf.bprintf buf "%-7s %10s %7s %10s %8s %11s %11s\n" "conn" "req_rps"
      "conns" "stamps" "leases" "bytes_in" "bytes_out";
    List.iter
      (fun i ->
         let s fmt = Printf.sprintf fmt i in
         Printf.bprintf buf "%-7s %s %s %s %s %s %s\n"
           (Printf.sprintf "c%d" i)
           (cell0 10 (rate_of (s "c%d.requests")))
           (cell0 7 (value_at last (s "c%d.conns")))
           (cell0 10 (value_at last (s "c%d.stamps")))
           (cell0 8 (value_at last (s "c%d.leases")))
           (cell0 11 (value_at last (s "c%d.bytes_in")))
           (cell0 11 (value_at last (s "c%d.bytes_out"))))
      conns
  end;
  Buffer.contents buf

let top_cmd =
  let run file once refresh_ms frames =
    let render_once ~clear =
      match top_load file with
      | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        `Err
      | Ok view ->
        if clear then print_string "\027[H\027[2J";
        print_string (top_render file view);
        flush stdout;
        if view.tv_ended then `Ended else `Live
    in
    if once then (match render_once ~clear:false with `Err -> exit 1 | _ -> ())
    else begin
      (* live mode is meant to race the writer from a second terminal:
         give the file a moment to appear before giving up *)
      let rec wait_for tries =
        if tries > 0 && not (Sys.file_exists file) then begin
          (try Unix.sleepf 0.1
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          wait_for (tries - 1)
        end
      in
      wait_for 50;
      let rec loop frame =
        match render_once ~clear:true with
        | `Err -> exit 1
        | `Ended -> ()
        | `Live ->
          if frames = 0 || frame < frames then begin
            (try Unix.sleepf (float_of_int refresh_ms *. 1e-3)
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            loop (frame + 1)
          end
      in
      loop 1
    end
  in
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file"; "f" ] ~docv:"FILE"
          ~doc:
            "Telemetry time series to watch (written by \
             $(b,--telemetry-out) on serve/loadgen).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render one frame from the current file contents and exit.")
  in
  let refresh =
    Arg.(
      value & opt int 500
      & info [ "refresh-ms" ] ~docv:"MS" ~doc:"Refresh period, milliseconds.")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) refreshes (0 = keep refreshing until the \
             series ends).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live per-shard view (rps, queue depth, batch p50, latency \
          p50/p99) of a telemetry time series; refreshes until the \
          sampler writes its end marker.")
    Term.(const run $ file $ once $ refresh $ frames)

let () =
  let doc =
    "Timestamp objects from atomic registers: algorithms, adversaries and \
     experiments from Helmi, Higham, Pacheco, Woelfel (PODC 2011)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ts_cli" ~version:"1.0.0" ~doc)
          [ list_cmd; run_cmd; adversary_cmd; figure_cmd; claims_cmd;
            stress_cmd; clocks_cmd; explore_cmd; verify_svc_cmd;
            distributed_cmd; obs_cmd; fuzz_cmd; serve_cmd; loadgen_cmd;
            top_cmd ]))
